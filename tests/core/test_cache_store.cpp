/// Persistent cache store: file-format round trips, corruption and
/// version-mismatch tolerance, concurrent save, and trajectory-neutral
/// warm starts through the engine (toy kernel and both registered apps).

#include "core/cache_store.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>

#include "apps/registry.h"
#include "core/engine.h"
#include "core/variant_cache.h"
#include "core/workload.h"
#include "ir/parser.h"
#include "mutation/edit.h"
#include "sim/device_config.h"
#include "sim/device_memory.h"
#include "sim/executor.h"
#include "sim/program.h"

namespace gevo::core {
namespace {

/// Scope fingerprint used by the file-level tests (the engine derives a
/// real one from the compiled baseline + fitness description).
constexpr std::uint64_t kTestScope = 42;

std::string
tmpPath(const std::string& name)
{
    const std::string path = ::testing::TempDir() + "gevo_" + name +
                             ".gevocache";
    std::remove(path.c_str());
    return path;
}

std::string
readFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
writeFile(const std::string& path, const std::string& bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

std::vector<CacheStoreRecord>
sampleRecords()
{
    std::vector<CacheStoreRecord> records;
    records.push_back({0, "plain-key", FitnessResult::pass(1.25)});
    // Keys are raw canonical bytes: embedded NULs and high bytes must
    // survive the round trip.
    records.push_back(
        {0, std::string("\x00\xff\x01key\x00tail", 11),
         FitnessResult::pass(0.5)});
    records.push_back({1, "program-key",
                       FitnessResult::fail("verifier: use before def")});
    records.push_back({1, "", FitnessResult::pass(7.0)}); // empty key
    records.push_back({2, "future-level", FitnessResult::pass(3.0)});
    return records;
}

void
expectRecordsEqual(const std::vector<CacheStoreRecord>& a,
                   const std::vector<CacheStoreRecord>& b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].level, b[i].level) << i;
        EXPECT_EQ(a[i].key, b[i].key) << i;
        EXPECT_EQ(a[i].result.valid, b[i].result.valid) << i;
        EXPECT_EQ(a[i].result.ms(), b[i].result.ms()) << i;
        EXPECT_EQ(a[i].result.failReason, b[i].result.failReason) << i;
    }
}

TEST(CacheStore, Crc32MatchesTheStandardCheckValue)
{
    // The IEEE CRC-32 check vector ("123456789" -> 0xcbf43926).
    EXPECT_EQ(crc32("123456789", 9), 0xcbf43926u);
    EXPECT_EQ(crc32("", 0), 0u);
}

TEST(CacheStore, SaveLoadRoundTrip)
{
    const auto path = tmpPath("roundtrip");
    const auto records = sampleRecords();
    ASSERT_TRUE(saveCacheStore(path, kTestScope, records));

    const auto load = loadCacheStore(path, kTestScope);
    ASSERT_EQ(load.status, CacheLoadResult::Status::Ok);
    EXPECT_FALSE(load.truncated);
    expectRecordsEqual(load.records, records);

    // Fail results round-trip their infinite ms bit-exactly.
    EXPECT_TRUE(std::isinf(load.records[2].result.ms()));
}

TEST(CacheStore, EmptyStoreRoundTrip)
{
    const auto path = tmpPath("empty");
    ASSERT_TRUE(saveCacheStore(path, kTestScope, {}));
    const auto load = loadCacheStore(path, kTestScope);
    EXPECT_EQ(load.status, CacheLoadResult::Status::Ok);
    EXPECT_TRUE(load.records.empty());
    EXPECT_FALSE(load.truncated);
}

TEST(CacheStore, MissingFileIsMissingNotAnError)
{
    const auto load = loadCacheStore(tmpPath("does-not-exist"), kTestScope);
    EXPECT_EQ(load.status, CacheLoadResult::Status::Missing);
    EXPECT_TRUE(load.records.empty());
}

TEST(CacheStore, GarbageFileIsRejectedAsBadHeader)
{
    const auto path = tmpPath("garbage");
    writeFile(path, "this is not a cache file at all, but it is long");
    EXPECT_EQ(loadCacheStore(path, kTestScope).status,
              CacheLoadResult::Status::BadHeader);

    writeFile(path, "GE"); // shorter than a header
    EXPECT_EQ(loadCacheStore(path, kTestScope).status,
              CacheLoadResult::Status::BadHeader);
}

TEST(CacheStore, VersionMismatchIsRejectedWholesale)
{
    const auto path = tmpPath("version");
    ASSERT_TRUE(saveCacheStore(path, kTestScope, sampleRecords()));
    auto bytes = readFile(path);
    bytes[8] = static_cast<char>(kCacheStoreVersion + 1); // LE version lsb
    writeFile(path, bytes);

    const auto load = loadCacheStore(path, kTestScope);
    EXPECT_EQ(load.status, CacheLoadResult::Status::VersionMismatch);
    EXPECT_TRUE(load.records.empty());
    EXPECT_NE(load.message.find("version"), std::string::npos);
}

TEST(CacheStore, ScopeMismatchIsRejectedWholesale)
{
    // Level-0 keys are pure edit-list bytes — identical across workloads
    // with entirely different fitness values — so a file saved under
    // another scope must be rejected like a version mismatch.
    const auto path = tmpPath("scope");
    ASSERT_TRUE(saveCacheStore(path, kTestScope, sampleRecords()));

    const auto wrong = loadCacheStore(path, kTestScope + 1);
    EXPECT_EQ(wrong.status, CacheLoadResult::Status::ScopeMismatch);
    EXPECT_TRUE(wrong.records.empty());

    // Scope 0 skips the check (diagnostic tooling reads any scope).
    EXPECT_EQ(loadCacheStore(path).status, CacheLoadResult::Status::Ok);
    EXPECT_EQ(loadCacheStore(path, kTestScope).status,
              CacheLoadResult::Status::Ok);
}

TEST(CacheStore, TruncatedTailKeepsTheGoodPrefix)
{
    const auto path = tmpPath("truncated");
    std::vector<CacheStoreRecord> records;
    for (int i = 0; i < 20; ++i)
        records.push_back({0, "key-" + std::to_string(i),
                           FitnessResult::pass(static_cast<double>(i))});
    ASSERT_TRUE(saveCacheStore(path, kTestScope, records));
    const auto bytes = readFile(path);

    // Cut the file at several points: a mid-record cut loses only the
    // records from the cut onward, never aborts, never misparses.
    for (const std::size_t cut :
         {bytes.size() - 1, bytes.size() - 7, bytes.size() / 2,
          bytes.size() / 4}) {
        writeFile(path, bytes.substr(0, cut));
        const auto load = loadCacheStore(path, kTestScope);
        ASSERT_EQ(load.status, CacheLoadResult::Status::Ok) << cut;
        EXPECT_TRUE(load.truncated) << cut;
        EXPECT_GT(load.skippedBytes, 0u) << cut;
        ASSERT_LT(load.records.size(), records.size()) << cut;
        for (std::size_t i = 0; i < load.records.size(); ++i)
            EXPECT_EQ(load.records[i].key, records[i].key) << cut;
    }
}

TEST(CacheStore, FlippedByteEndsTheStreamAtTheDamagedRecord)
{
    const auto path = tmpPath("corrupt");
    std::vector<CacheStoreRecord> records;
    for (int i = 0; i < 20; ++i)
        records.push_back({1, "key-" + std::to_string(i),
                           FitnessResult::pass(static_cast<double>(i))});
    ASSERT_TRUE(saveCacheStore(path, kTestScope, records));
    auto bytes = readFile(path);

    // Flip one byte two-thirds into the file: some record's CRC stops
    // matching, and everything before it is still served.
    const std::size_t victim = bytes.size() * 2 / 3;
    bytes[victim] = static_cast<char>(bytes[victim] ^ 0x40);
    writeFile(path, bytes);

    const auto load = loadCacheStore(path, kTestScope);
    ASSERT_EQ(load.status, CacheLoadResult::Status::Ok);
    EXPECT_TRUE(load.truncated);
    EXPECT_GT(load.records.size(), 0u);
    EXPECT_LT(load.records.size(), records.size());
    for (std::size_t i = 0; i < load.records.size(); ++i) {
        EXPECT_EQ(load.records[i].key, records[i].key);
        EXPECT_EQ(load.records[i].result.ms(), records[i].result.ms());
    }
}

TEST(CacheStore, SaveAtomicallyReplacesAndLeavesNoTmp)
{
    const auto path = tmpPath("replace");
    ASSERT_TRUE(saveCacheStore(path, kTestScope, sampleRecords()));
    std::vector<CacheStoreRecord> second = {
        {0, "only-key", FitnessResult::pass(2.0)}};
    ASSERT_TRUE(saveCacheStore(path, kTestScope, second));

    const auto load = loadCacheStore(path, kTestScope);
    expectRecordsEqual(load.records, second);
    // Temp names are process-unique (`.tmp.<pid>.<n>`): scan for any
    // leftover starting with our basename + ".tmp".
    const auto base =
        std::filesystem::path(path).filename().string() + ".tmp";
    for (const auto& entry : std::filesystem::directory_iterator(
             std::filesystem::path(path).parent_path()))
        EXPECT_NE(entry.path().filename().string().rfind(base, 0), 0u)
            << "tmp file left behind: " << entry.path();
}

TEST(CacheStore, UnwritablePathFailsWithoutClobbering)
{
    const auto path = tmpPath("unwritable");
    ASSERT_TRUE(saveCacheStore(path, kTestScope, sampleRecords()));
    std::string error;
    EXPECT_FALSE(saveCacheStore("/nonexistent-dir/x/y.gevocache", kTestScope,
                                sampleRecords(), &error));
    EXPECT_FALSE(error.empty());
    // The earlier file is untouched.
    EXPECT_EQ(loadCacheStore(path, kTestScope).status, CacheLoadResult::Status::Ok);
}

// ---- merge-on-save: two writers against one cache file ----

TEST(CacheStore, MergeSavePreservesTheOtherWriterEntries)
{
    // Two searches sharing one cache file, the last-writer-wins hazard:
    // writer A saves {a}, writer B (which loaded before A saved) merge-
    // saves {b} — the file must end with {a, b}, not just {b}.
    const auto path = tmpPath("merge");
    const std::vector<CacheStoreRecord> fromA = {
        {0, "key-a", FitnessResult::pass(1.0)}};
    const std::vector<CacheStoreRecord> fromB = {
        {0, "key-b", FitnessResult::pass(2.0)},
        {1, "prog-b", FitnessResult::pass(2.5)}};
    ASSERT_TRUE(saveCacheStore(path, kTestScope, fromA));
    ASSERT_TRUE(mergeSaveCacheStore(path, kTestScope, fromB));

    const auto load = loadCacheStore(path, kTestScope);
    ASSERT_EQ(load.status, CacheLoadResult::Status::Ok);
    // Disk-only entries come first (older in LRU recency), then ours.
    std::vector<CacheStoreRecord> expected = fromA;
    expected.insert(expected.end(), fromB.begin(), fromB.end());
    expectRecordsEqual(expected, load.records);
}

TEST(CacheStore, MergeSaveFreshRecordsWinKeyCollisions)
{
    const auto path = tmpPath("merge_collide");
    ASSERT_TRUE(saveCacheStore(
        path, kTestScope,
        {{0, "shared", FitnessResult::pass(9.0)},
         {1, "shared", FitnessResult::pass(8.0)}, // same key, other level
         {0, "theirs", FitnessResult::pass(7.0)}}));
    ASSERT_TRUE(mergeSaveCacheStore(
        path, kTestScope, {{0, "shared", FitnessResult::pass(1.0)}}));

    const auto load = loadCacheStore(path, kTestScope);
    ASSERT_EQ(load.status, CacheLoadResult::Status::Ok);
    // Level-1 "shared" is a different cache level: it must survive.
    expectRecordsEqual({{1, "shared", FitnessResult::pass(8.0)},
                        {0, "theirs", FitnessResult::pass(7.0)},
                        {0, "shared", FitnessResult::pass(1.0)}},
                       load.records);
}

TEST(CacheStore, MergeSaveIgnoresForeignAndDamagedFiles)
{
    // A wrong-scope file must not leak entries into our save; a damaged
    // file contributes only its good prefix (same policy as load).
    const auto path = tmpPath("merge_foreign");
    ASSERT_TRUE(saveCacheStore(path, kTestScope + 1,
                               {{0, "foreign", FitnessResult::pass(1.0)}}));
    const std::vector<CacheStoreRecord> mine = {
        {0, "mine", FitnessResult::pass(2.0)}};
    ASSERT_TRUE(mergeSaveCacheStore(path, kTestScope, mine));
    const auto load = loadCacheStore(path, kTestScope);
    ASSERT_EQ(load.status, CacheLoadResult::Status::Ok);
    expectRecordsEqual(mine, load.records);

    // Damaged existing file: truncate mid-record, then merge-save.
    const auto damaged = tmpPath("merge_damaged");
    ASSERT_TRUE(saveCacheStore(path, kTestScope, sampleRecords()));
    const auto full = readFile(path);
    writeFile(damaged, full.substr(0, full.size() - 5));
    ASSERT_TRUE(mergeSaveCacheStore(damaged, kTestScope, mine));
    const auto merged = loadCacheStore(damaged, kTestScope);
    ASSERT_EQ(merged.status, CacheLoadResult::Status::Ok);
    auto expected = sampleRecords();
    expected.pop_back(); // The truncated final record is gone.
    expected.insert(expected.end(), mine.begin(), mine.end());
    expectRecordsEqual(expected, merged.records);
}

TEST(CacheStore, TwoWriterInterleavingConvergesToTheUnion)
{
    // The full two-writer dance from the engine's perspective: A and B
    // both start from the same file, evolve disjoint entries, and merge-
    // save in either order. Whoever saves second sees the first's save on
    // disk, so the union survives regardless of order.
    for (const bool aFirst : {true, false}) {
        const auto path = tmpPath(aFirst ? "union_ab" : "union_ba");
        ASSERT_TRUE(saveCacheStore(
            path, kTestScope, {{0, "seed", FitnessResult::pass(5.0)}}));
        const std::vector<CacheStoreRecord> fromA = {
            {0, "seed", FitnessResult::pass(5.0)},
            {0, "a-only", FitnessResult::pass(1.0)}};
        const std::vector<CacheStoreRecord> fromB = {
            {0, "seed", FitnessResult::pass(5.0)},
            {0, "b-only", FitnessResult::pass(2.0)}};
        ASSERT_TRUE(mergeSaveCacheStore(path, kTestScope,
                                        aFirst ? fromA : fromB));
        ASSERT_TRUE(mergeSaveCacheStore(path, kTestScope,
                                        aFirst ? fromB : fromA));

        const auto load = loadCacheStore(path, kTestScope);
        ASSERT_EQ(load.status, CacheLoadResult::Status::Ok);
        std::set<std::string> keys;
        for (const auto& rec : load.records)
            keys.insert(rec.key);
        EXPECT_EQ(keys,
                  (std::set<std::string>{"seed", "a-only", "b-only"}));
        ASSERT_EQ(load.records.size(), 3u);
    }
}

// ---- LRU interaction: persisted entries re-enter recency order ----

std::string
keyN(std::uint64_t n)
{
    mut::Edit e;
    e.kind = mut::EditKind::OperandReplace;
    e.srcUid = n;
    e.opIndex = 0;
    e.newOperand = ir::Operand::imm(1);
    return VariantCache::keyOf({e});
}

TEST(CacheStore, SnapshotPreloadReproducesLruEvictionOrder)
{
    VariantCache original(1, 3);
    original.insert(keyN(1), FitnessResult::pass(1.0));
    original.insert(keyN(2), FitnessResult::pass(2.0));
    original.insert(keyN(3), FitnessResult::pass(3.0));
    FitnessResult out;
    ASSERT_TRUE(original.lookup(keyN(1), &out)); // recency [1, 3, 2]

    // Persist and restore through the store.
    const auto path = tmpPath("lru");
    std::vector<CacheStoreRecord> records;
    for (auto& [key, result] : original.snapshot())
        records.push_back({0, std::move(key), result});
    ASSERT_TRUE(saveCacheStore(path, kTestScope, records));
    const auto load = loadCacheStore(path, kTestScope);
    ASSERT_EQ(load.status, CacheLoadResult::Status::Ok);

    VariantCache restored(1, 3);
    std::vector<std::pair<std::string, FitnessResult>> entries;
    for (const auto& rec : load.records)
        entries.emplace_back(rec.key, rec.result);
    EXPECT_EQ(restored.preload(entries), 3u);

    // Same next eviction as the original would make: inserting a fourth
    // key must drop 2 (least recent), not the recently touched 1.
    restored.insert(keyN(4), FitnessResult::pass(4.0));
    EXPECT_TRUE(restored.lookup(keyN(1), &out));
    EXPECT_FALSE(restored.lookup(keyN(2), &out));
    EXPECT_TRUE(restored.lookup(keyN(3), &out));
    EXPECT_TRUE(restored.lookup(keyN(4), &out));
}

TEST(CacheStore, ConcurrentSaveDuringEvaluationIsConsistent)
{
    // Writers hammer the cache while the main thread snapshots, saves and
    // reloads — the engine's periodic save runs against exactly this kind
    // of traffic. Every loaded record must carry the value its key
    // implies, at every intermediate point.
    const auto path = tmpPath("concurrent");
    VariantCache cache(8);
    constexpr int kWriters = 4;
    constexpr std::uint64_t kPerWriter = 500;

    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&cache, w] {
            for (std::uint64_t i = 0; i < kPerWriter; ++i) {
                const std::uint64_t n =
                    static_cast<std::uint64_t>(w) * kPerWriter + i;
                cache.insert(keyN(n),
                             FitnessResult::pass(static_cast<double>(n)));
            }
        });
    }

    auto checkLoad = [&](const CacheLoadResult& load) {
        ASSERT_EQ(load.status, CacheLoadResult::Status::Ok);
        EXPECT_FALSE(load.truncated);
        for (const auto& rec : load.records) {
            FitnessResult expected;
            ASSERT_TRUE(cache.lookup(rec.key, &expected));
            EXPECT_EQ(rec.result.ms(), expected.ms());
        }
    };
    for (int round = 0; round < 15; ++round) {
        std::vector<CacheStoreRecord> records;
        for (auto& [key, result] : cache.snapshot())
            records.push_back({0, std::move(key), result});
        ASSERT_TRUE(saveCacheStore(path, kTestScope, records));
        checkLoad(loadCacheStore(path, kTestScope));
    }
    for (auto& t : writers)
        t.join();

    std::vector<CacheStoreRecord> records;
    for (auto& [key, result] : cache.snapshot())
        records.push_back({0, std::move(key), result});
    ASSERT_TRUE(saveCacheStore(path, kTestScope, records));
    const auto finalLoad = loadCacheStore(path, kTestScope);
    checkLoad(finalLoad);
    EXPECT_EQ(finalLoad.records.size(), kWriters * kPerWriter);
}

// ---- warm starts through the engine are trajectory-neutral ----

constexpr const char* kToyKernel = R"(
kernel @toy params 1 regs 24 shared 512 local 0 {
entry:
    r1 = tid
    r2 = mov 0
    br memset
memset:
    r3 = mul.i32 r2, 4
    r4 = cvt.i32.i64 r3
    st.i32.shared r4, 0
    r2 = add.i32 r2, 1
    r5 = cmp.lt.i32 r2, 96
    brc r5, memset, work
work:
    r6 = mul.i32 r1, 2
    r7 = cvt.i32.i64 r1
    r8 = mul.i64 r7, 4
    r9 = add.i64 r0, r8
    st.i32.global r9, r6
    ret
}
)";

class ToyFitness : public FitnessFunction {
  public:
    FitnessResult
    evaluate(const CompiledVariant& variant) const override
    {
        const auto* prog = variant.programs.find("toy");
        if (prog == nullptr)
            return FitnessResult::fail("kernel missing");
        sim::DeviceMemory mem(1 << 16);
        const auto out = mem.alloc(64 * 4);
        const auto res = sim::launchKernel(
            sim::p100(), mem, *prog, {1, 64},
            {static_cast<std::uint64_t>(out)});
        if (!res.ok())
            return FitnessResult::fail(res.fault.detail);
        for (int t = 0; t < 64; ++t) {
            if (mem.read<std::int32_t>(out + t * 4) != t * 2)
                return FitnessResult::fail("wrong output");
        }
        return FitnessResult::pass(res.stats.ms);
    }

    std::string name() const override { return "toy"; }
};

void
expectSameTrajectory(const SearchResult& a, const SearchResult& b)
{
    EXPECT_EQ(mut::serializeEdits(a.best.edits),
              mut::serializeEdits(b.best.edits));
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t g = 0; g < a.history.size(); ++g) {
        EXPECT_DOUBLE_EQ(a.history[g].bestMs, b.history[g].bestMs);
        EXPECT_DOUBLE_EQ(a.history[g].meanMs, b.history[g].meanMs);
        EXPECT_EQ(a.history[g].validCount, b.history[g].validCount);
        EXPECT_EQ(mut::serializeEdits(a.history[g].bestEdits),
                  mut::serializeEdits(b.history[g].bestEdits));
    }
}

SearchResult
runToy(const ir::Module& mod, const std::string& cachePath,
       std::uint32_t threads, bool useCache = true,
       std::uint32_t saveInterval = 0)
{
    ToyFitness fitness;
    EvolutionParams params;
    params.populationSize = 12;
    params.generations = 10;
    params.elitism = 2;
    params.seed = 21;
    params.threads = threads;
    params.useCache = useCache;
    params.cachePath = cachePath;
    params.cacheSaveInterval = saveInterval;
    return EvolutionEngine(mod, fitness, params).run();
}

TEST(CacheStoreEngine, WarmStartIsTrajectoryNeutral)
{
    auto parsed = ir::parseModule(kToyKernel);
    ASSERT_TRUE(parsed.ok) << parsed.error;

    for (const std::uint32_t threads : {1u, 4u}) {
        const auto path =
            tmpPath("warm_t" + std::to_string(threads));
        const auto reference = runToy(parsed.module, "", threads);
        const auto cold = runToy(parsed.module, path, threads);
        const auto warm = runToy(parsed.module, path, threads);
        const auto off = runToy(parsed.module, "", threads, false);

        expectSameTrajectory(reference, cold);
        expectSameTrajectory(reference, warm);
        expectSameTrajectory(reference, off);

        EXPECT_EQ(cold.cacheSummary.preloaded, 0u);
        EXPECT_GT(warm.cacheSummary.preloaded, 0u);
        // Reusing persisted work must strictly cut real pipeline work.
        EXPECT_LT(warm.cacheSummary.evaluated, cold.cacheSummary.evaluated);
    }
}

TEST(CacheStoreEngine, PeriodicSaveMatchesFinalSave)
{
    auto parsed = ir::parseModule(kToyKernel);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const auto pathFinal = tmpPath("save_final");
    const auto pathPeriodic = tmpPath("save_periodic");

    const auto a = runToy(parsed.module, pathFinal, 1);
    const auto b = runToy(parsed.module, pathPeriodic, 1, true,
                          /*saveInterval=*/2);
    expectSameTrajectory(a, b);

    // Both files end at the identical final snapshot.
    const auto fa = loadCacheStore(pathFinal);
    const auto fb = loadCacheStore(pathPeriodic);
    ASSERT_EQ(fa.status, CacheLoadResult::Status::Ok);
    ASSERT_EQ(fb.status, CacheLoadResult::Status::Ok);
    expectRecordsEqual(fa.records, fb.records);
}

TEST(CacheStoreEngine, DamagedCacheFilesDegradeToColdStart)
{
    auto parsed = ir::parseModule(kToyKernel);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const auto reference = runToy(parsed.module, "", 1);

    // Garbage file: not a cache at all.
    const auto garbage = tmpPath("degrade_garbage");
    writeFile(garbage, "nonsense bytes where a cache should be");
    const auto fromGarbage = runToy(parsed.module, garbage, 1);
    expectSameTrajectory(reference, fromGarbage);
    EXPECT_EQ(fromGarbage.cacheSummary.preloaded, 0u);

    // Version-mismatched file: rejected wholesale, still a clean run.
    const auto versioned = tmpPath("degrade_version");
    ASSERT_TRUE(saveCacheStore(versioned, kTestScope, sampleRecords()));
    auto bytes = readFile(versioned);
    bytes[8] = static_cast<char>(kCacheStoreVersion + 1);
    writeFile(versioned, bytes);
    const auto fromMismatch = runToy(parsed.module, versioned, 1);
    expectSameTrajectory(reference, fromMismatch);
    EXPECT_EQ(fromMismatch.cacheSummary.preloaded, 0u);

    // Truncated real cache: the surviving prefix still preloads, and the
    // trajectory is untouched either way.
    const auto truncated = tmpPath("degrade_truncated");
    runToy(parsed.module, truncated, 1);
    const auto full = readFile(truncated);
    writeFile(truncated, full.substr(0, full.size() / 2));
    const auto fromTruncated = runToy(parsed.module, truncated, 1);
    expectSameTrajectory(reference, fromTruncated);
    EXPECT_GT(fromTruncated.cacheSummary.preloaded, 0u);
}

TEST(CacheStoreEngine, CrossWorkloadCacheIsRejectedAsColdStart)
{
    // A cache saved by one workload must never feed another: level-0
    // keys collide across workloads (keyOf({}) for one), so an unscoped
    // preload would silently serve ADEPT fitness values to SIMCoV. The
    // scope fingerprint turns that into a warned-about cold start.
    apps::registerBuiltinWorkloads();
    auto& registry = WorkloadRegistry::instance();
    WorkloadConfig config;
    config.defaults = {{"pairs", "2"}, {"grid", "16"}, {"steps", "2"}};
    const auto adept = registry.get("adept-v0").make(config);
    const auto simcov = registry.get("simcov").make(config);

    auto run = [&](const WorkloadInstance& instance,
                   const std::string& cachePath) {
        EvolutionParams params;
        params.populationSize = 6;
        params.generations = 3;
        params.elitism = 1;
        params.seed = 19;
        params.cachePath = cachePath;
        return EvolutionEngine(instance.module(), instance.fitness(),
                               params)
            .run();
    };

    const auto path = tmpPath("cross_workload");
    run(*adept, path); // writes an ADEPT-scoped cache
    const auto reference = run(*simcov, "");
    const auto crossed = run(*simcov, path);
    EXPECT_EQ(crossed.cacheSummary.preloaded, 0u);
    expectSameTrajectory(reference, crossed);
}

TEST(CacheStoreEngine, WarmStartIsNeutralForEveryRegisteredWorkload)
{
    // The acceptance property at app scale: ADEPT and SIMCoV, threads 1
    // and 4, cache cold / warm / off — one trajectory.
    apps::registerBuiltinWorkloads();
    auto& registry = WorkloadRegistry::instance();
    for (const std::string name : {"adept-v0", "simcov"}) {
        const auto& workload = registry.get(name);
        WorkloadConfig config;
        config.defaults = {{"pairs", "2"}, {"grid", "16"}, {"steps", "2"}};
        const auto instance = workload.make(config);

        EvolutionParams params = workload.searchDefaults;
        params.populationSize = 6;
        params.generations = 3;
        params.elitism = 1;
        params.seed = 19;
        auto run = [&](const std::string& cachePath, std::uint32_t threads,
                       bool useCache) {
            EvolutionParams p = params;
            p.cachePath = cachePath;
            p.threads = threads;
            p.useCache = useCache;
            return EvolutionEngine(instance->module(), instance->fitness(),
                                   p)
                .run();
        };

        for (const std::uint32_t threads : {1u, 4u}) {
            const auto path = tmpPath(
                "app_" + name + "_t" + std::to_string(threads));
            const auto reference = run("", threads, true);
            const auto cold = run(path, threads, true);
            const auto warm = run(path, threads, true);
            const auto off = run("", threads, false);

            expectSameTrajectory(reference, cold);
            expectSameTrajectory(reference, warm);
            expectSameTrajectory(reference, off);
            EXPECT_GT(warm.cacheSummary.preloaded, 0u) << name;
            EXPECT_LE(warm.cacheSummary.evaluated,
                      cold.cacheSummary.evaluated)
                << name;
        }
    }
}

} // namespace
} // namespace gevo::core
