/// Checkpoint/resume: file-format round trips, corruption rejection, and
/// bit-identical resumed trajectories through the engine — including an
/// abrupt mid-search death (a forked child that _Exit()s between periodic
/// checkpoints, the deterministic stand-in for kill -9).

#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include <sys/wait.h>
#include <unistd.h>

#include "core/engine.h"
#include "ir/parser.h"
#include "mutation/edit.h"
#include "sim/device_config.h"
#include "sim/device_memory.h"
#include "sim/executor.h"
#include "sim/program.h"

namespace gevo::core {
namespace {

constexpr const char* kToyKernel = R"(
kernel @toy params 1 regs 24 shared 512 local 0 {
entry:
    r1 = tid
    r2 = mov 0
    br memset
memset:
    r3 = mul.i32 r2, 4
    r4 = cvt.i32.i64 r3
    st.i32.shared r4, 0
    r2 = add.i32 r2, 1
    r5 = cmp.lt.i32 r2, 96
    brc r5, memset, work
work:
    r6 = mul.i32 r1, 2
    r7 = cvt.i32.i64 r1
    r8 = mul.i64 r7, 4
    r9 = add.i64 r0, r8
    st.i32.global r9, r6
    ret
}
)";

class ToyFitness : public FitnessFunction {
  public:
    FitnessResult
    evaluate(const CompiledVariant& variant) const override
    {
        const auto* prog = variant.programs.find("toy");
        if (prog == nullptr)
            return FitnessResult::fail("kernel missing");
        sim::DeviceMemory mem(1 << 16);
        const auto out = mem.alloc(64 * 4);
        const auto res = sim::launchKernel(
            sim::p100(), mem, *prog, {1, 64},
            {static_cast<std::uint64_t>(out)});
        if (!res.ok())
            return FitnessResult::fail(res.fault.detail);
        for (int t = 0; t < 64; ++t) {
            if (mem.read<std::int32_t>(out + t * 4) != t * 2)
                return FitnessResult::fail("wrong output");
        }
        return FitnessResult::pass(res.stats.ms);
    }

    std::string name() const override { return "toy"; }
};

ir::Module
toyModule()
{
    auto res = ir::parseModule(kToyKernel);
    EXPECT_TRUE(res.ok) << res.error;
    return std::move(res.module);
}

std::string
tmpPath(const std::string& name)
{
    const std::string path =
        ::testing::TempDir() + "gevo_" + name + ".gevockpt";
    std::remove(path.c_str());
    return path;
}

std::string
readFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
writeFile(const std::string& path, const std::string& bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

/// A nontrivial state exercising every field: two islands, mixed
/// valid/invalid individuals, multi-generation history, quarantine keys
/// with embedded NULs (canonical edit-list keys are binary).
CheckpointState
sampleState()
{
    CheckpointState st;
    st.generation = 7;
    st.finished = false;
    st.baselineMs = 12.75;

    mut::Edit del;
    del.kind = mut::EditKind::InstrDelete;
    del.srcUid = 42;
    mut::Edit opr;
    opr.kind = mut::EditKind::OperandReplace;
    opr.srcUid = 9;
    opr.opIndex = 1;
    opr.newOperand = ir::Operand::imm(3);

    st.best.edits = {del};
    // v3: full objective vector (time, sectors, divergence), not just
    // the scalar.
    st.best.fitness = FitnessResult::pass(3.5, 96.0, 2.0);
    st.best.evaluated = true;

    GenerationLog log;
    log.generation = 7;
    log.bestMs = 3.5;
    log.meanMs = 5.25;
    log.validCount = 3;
    log.evaluations = 4;
    log.cacheHits = 1;
    log.cacheMisses = 3;
    log.workerCrashes = 1;
    log.quarantineHits = 2;
    log.bestEdits = {del};
    log.islandBestMs = {3.5, 4.0};
    // v2: the self-adaptation audit trail (one rate tuple per island).
    mut::SamplerConfig loggedRates;
    loggedRates.wDelete = 0.5;
    loggedRates.wOperand = 0.125;
    log.islandRates = {loggedRates, mut::SamplerConfig{}};
    // v3: Pareto-front size per generation.
    log.paretoFrontSize = 2;
    st.history = {log, log};
    st.history[0].generation = 6;

    CheckpointIsland a;
    a.rngState = {1, 2, 3, 4};
    a.bestMs = 3.5;
    Individual good{{del, opr}, FitnessResult::pass(3.5, 96.0, 2.0), true};
    Individual bad{{opr}, FitnessResult::fail("wrong output"), true};
    Individual fresh{{del}, {}, false};
    a.members = {good, bad, fresh};
    // v2: mid-verdict self-adaptive rate state.
    a.rates.wSwap = 0.75;
    a.candidateRates.wSwap = 1.5;
    a.candidateRates.exploreFloor = 0.0625;
    a.ratePending = true;
    a.rateLastBest = 3.25;
    CheckpointIsland b;
    b.rngState = {~0ull, 5, 6, 7};
    b.bestMs = 4.0;
    b.members = {bad, good};
    st.islands = {a, b};

    st.quarantine = {std::string("bin\0key", 7), "plain"};
    // v3: the cross-generation Pareto archive rides along.
    st.paretoFront = {good, Individual{{opr},
                                       FitnessResult::pass(4.0, 80.0, 1.0),
                                       true}};
    return st;
}

void
expectRatesEqual(const mut::SamplerConfig& a, const mut::SamplerConfig& b)
{
    EXPECT_EQ(a.wDelete, b.wDelete);
    EXPECT_EQ(a.wCopy, b.wCopy);
    EXPECT_EQ(a.wMove, b.wMove);
    EXPECT_EQ(a.wReplace, b.wReplace);
    EXPECT_EQ(a.wSwap, b.wSwap);
    EXPECT_EQ(a.wOperand, b.wOperand);
    EXPECT_EQ(a.exploreFloor, b.exploreFloor);
}

void
expectIndividualsEqual(const Individual& a, const Individual& b)
{
    EXPECT_EQ(mut::serializeEdits(a.edits), mut::serializeEdits(b.edits));
    EXPECT_EQ(a.fitness.valid, b.fitness.valid);
    EXPECT_EQ(a.fitness.objectives, b.fitness.objectives);
    EXPECT_EQ(a.fitness.failReason, b.fitness.failReason);
    EXPECT_EQ(a.evaluated, b.evaluated);
}

void
expectStatesEqual(const CheckpointState& a, const CheckpointState& b)
{
    EXPECT_EQ(a.generation, b.generation);
    EXPECT_EQ(a.finished, b.finished);
    EXPECT_EQ(a.baselineMs, b.baselineMs);
    expectIndividualsEqual(a.best, b.best);
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t g = 0; g < a.history.size(); ++g) {
        EXPECT_EQ(a.history[g].generation, b.history[g].generation);
        EXPECT_EQ(a.history[g].bestMs, b.history[g].bestMs);
        EXPECT_EQ(a.history[g].meanMs, b.history[g].meanMs);
        EXPECT_EQ(a.history[g].validCount, b.history[g].validCount);
        EXPECT_EQ(a.history[g].evaluations, b.history[g].evaluations);
        EXPECT_EQ(a.history[g].cacheHits, b.history[g].cacheHits);
        EXPECT_EQ(a.history[g].cacheMisses, b.history[g].cacheMisses);
        EXPECT_EQ(a.history[g].workerCrashes,
                  b.history[g].workerCrashes);
        EXPECT_EQ(a.history[g].workerTimeouts,
                  b.history[g].workerTimeouts);
        EXPECT_EQ(a.history[g].protocolErrors,
                  b.history[g].protocolErrors);
        EXPECT_EQ(a.history[g].quarantineHits,
                  b.history[g].quarantineHits);
        EXPECT_EQ(a.history[g].paretoFrontSize,
                  b.history[g].paretoFrontSize);
        EXPECT_EQ(a.history[g].islandBestMs, b.history[g].islandBestMs);
        EXPECT_EQ(mut::serializeEdits(a.history[g].bestEdits),
                  mut::serializeEdits(b.history[g].bestEdits));
        ASSERT_EQ(a.history[g].islandRates.size(),
                  b.history[g].islandRates.size());
        for (std::size_t i = 0; i < a.history[g].islandRates.size(); ++i)
            expectRatesEqual(a.history[g].islandRates[i],
                             b.history[g].islandRates[i]);
    }
    ASSERT_EQ(a.islands.size(), b.islands.size());
    for (std::size_t i = 0; i < a.islands.size(); ++i) {
        EXPECT_EQ(a.islands[i].rngState, b.islands[i].rngState);
        EXPECT_EQ(a.islands[i].bestMs, b.islands[i].bestMs);
        ASSERT_EQ(a.islands[i].members.size(),
                  b.islands[i].members.size());
        for (std::size_t m = 0; m < a.islands[i].members.size(); ++m)
            expectIndividualsEqual(a.islands[i].members[m],
                                   b.islands[i].members[m]);
        expectRatesEqual(a.islands[i].rates, b.islands[i].rates);
        expectRatesEqual(a.islands[i].candidateRates,
                         b.islands[i].candidateRates);
        EXPECT_EQ(a.islands[i].ratePending, b.islands[i].ratePending);
        EXPECT_EQ(a.islands[i].rateLastBest, b.islands[i].rateLastBest);
    }
    EXPECT_EQ(a.quarantine, b.quarantine);
    ASSERT_EQ(a.paretoFront.size(), b.paretoFront.size());
    for (std::size_t i = 0; i < a.paretoFront.size(); ++i)
        expectIndividualsEqual(a.paretoFront[i], b.paretoFront[i]);
}

TEST(Checkpoint, SaveLoadRoundTrip)
{
    const auto path = tmpPath("roundtrip");
    const auto st = sampleState();
    std::string error;
    ASSERT_TRUE(saveCheckpoint(path, 42, st, &error)) << error;
    const auto load = loadCheckpoint(path, 42);
    ASSERT_EQ(load.status, CheckpointLoadResult::Status::Ok)
        << load.message;
    expectStatesEqual(st, load.state);
    std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileIsMissing)
{
    const auto load = loadCheckpoint(tmpPath("missing"));
    EXPECT_EQ(load.status, CheckpointLoadResult::Status::Missing);
}

TEST(Checkpoint, GarbageFileIsRejectedAsBadHeader)
{
    const auto path = tmpPath("garbage");
    writeFile(path, "definitely not a checkpoint");
    const auto load = loadCheckpoint(path);
    EXPECT_EQ(load.status, CheckpointLoadResult::Status::BadHeader);
    std::remove(path.c_str());
}

TEST(Checkpoint, VersionMismatchIsRejected)
{
    const auto path = tmpPath("version");
    ASSERT_TRUE(saveCheckpoint(path, 42, sampleState()));
    auto bytes = readFile(path);
    bytes[8] = static_cast<char>(kCheckpointVersion + 1); // u32 LSB.
    writeFile(path, bytes);
    const auto load = loadCheckpoint(path, 42);
    EXPECT_EQ(load.status, CheckpointLoadResult::Status::VersionMismatch);
    std::remove(path.c_str());
}

TEST(Checkpoint, OlderV2FileDegradesToVersionMismatch)
{
    // A pre-objective-vector (v2) checkpoint is not readable by the v3
    // parser; it must surface as VersionMismatch, which the engine
    // turns into a warned cold start instead of a partial restore.
    const auto path = tmpPath("v2");
    ASSERT_TRUE(saveCheckpoint(path, 42, sampleState()));
    auto bytes = readFile(path);
    bytes[8] = 2; // u32 version LSB: the PR 9 on-disk format.
    writeFile(path, bytes);
    const auto load = loadCheckpoint(path, 42);
    EXPECT_EQ(load.status, CheckpointLoadResult::Status::VersionMismatch);
    std::remove(path.c_str());
}

TEST(Checkpoint, ScopeMismatchIsRejected)
{
    const auto path = tmpPath("scope");
    ASSERT_TRUE(saveCheckpoint(path, 42, sampleState()));
    const auto load = loadCheckpoint(path, 43);
    EXPECT_EQ(load.status, CheckpointLoadResult::Status::ScopeMismatch);
    std::remove(path.c_str());
}

TEST(Checkpoint, AnyTruncationRejectsTheWholeFile)
{
    // Unlike the cache store (independent records, good prefix kept), a
    // checkpoint is one consistent state: every truncation point beyond
    // the header must reject the file outright.
    const auto path = tmpPath("truncated");
    ASSERT_TRUE(saveCheckpoint(path, 42, sampleState()));
    const auto full = readFile(path);
    for (const double fraction : {0.25, 0.5, 0.9}) {
        writeFile(path, full.substr(0, static_cast<std::size_t>(
                                           full.size() * fraction)));
        const auto load = loadCheckpoint(path, 42);
        EXPECT_EQ(load.status, CheckpointLoadResult::Status::Corrupt)
            << "fraction " << fraction;
    }
    std::remove(path.c_str());
}

TEST(Checkpoint, AnyFlippedByteRejectsTheWholeFile)
{
    const auto path = tmpPath("bitflip");
    ASSERT_TRUE(saveCheckpoint(path, 42, sampleState()));
    const auto full = readFile(path);
    // Flip a byte in an early, a middle and a late record.
    for (const std::size_t pos :
         {std::size_t{24}, full.size() / 2, full.size() - 3}) {
        auto bytes = full;
        bytes[pos] = static_cast<char>(bytes[pos] ^ 0x40);
        writeFile(path, bytes);
        const auto load = loadCheckpoint(path, 42);
        EXPECT_EQ(load.status, CheckpointLoadResult::Status::Corrupt)
            << "byte " << pos;
    }
    std::remove(path.c_str());
}

TEST(Checkpoint, TrailingBytesRejectTheWholeFile)
{
    const auto path = tmpPath("trailing");
    ASSERT_TRUE(saveCheckpoint(path, 42, sampleState()));
    writeFile(path, readFile(path) + "spare bytes");
    const auto load = loadCheckpoint(path, 42);
    EXPECT_EQ(load.status, CheckpointLoadResult::Status::Corrupt);
    std::remove(path.c_str());
}

// ---- engine-level resume ----

void
expectSameTrajectory(const SearchResult& a, const SearchResult& b)
{
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t g = 0; g < a.history.size(); ++g) {
        const GenerationLog& la = a.history[g];
        const GenerationLog& lb = b.history[g];
        EXPECT_EQ(la.generation, lb.generation);
        EXPECT_EQ(la.bestMs, lb.bestMs) << "gen " << la.generation;
        EXPECT_EQ(la.meanMs, lb.meanMs) << "gen " << la.generation;
        EXPECT_EQ(la.validCount, lb.validCount) << "gen " << la.generation;
        EXPECT_EQ(la.evaluations, lb.evaluations)
            << "gen " << la.generation;
        EXPECT_EQ(la.islandBestMs, lb.islandBestMs)
            << "gen " << la.generation;
        EXPECT_EQ(mut::serializeEdits(la.bestEdits),
                  mut::serializeEdits(lb.bestEdits))
            << "gen " << la.generation;
    }
    EXPECT_EQ(mut::serializeEdits(a.best.edits),
              mut::serializeEdits(b.best.edits));
    EXPECT_EQ(a.best.fitness.ms(), b.best.fitness.ms());
}

EvolutionParams
resumeParams(std::uint32_t threads, bool useCache)
{
    EvolutionParams params;
    params.populationSize = 10;
    params.generations = 8;
    params.elitism = 2;
    params.seed = 11;
    params.threads = threads;
    params.useCache = useCache;
    return params;
}

TEST(CheckpointEngine, AbruptDeathThenResumeIsBitIdentical)
{
    // The kill -9 scenario, made deterministic: a forked child runs the
    // search with per-generation checkpoints and _Exit()s mid-run —
    // no final saves, no destructors, exactly what SIGKILL leaves
    // behind. The parent resumes from the orphaned periodic checkpoint
    // and must land on the uninterrupted run's exact history, across
    // thread counts and cache on/off.
    const auto mod = toyModule();
    ToyFitness fitness;
    for (const std::uint32_t threads : {1u, 4u}) {
        for (const bool useCache : {true, false}) {
            SCOPED_TRACE(testing::Message()
                         << "threads=" << threads << " cache=" << useCache);
            auto params = resumeParams(threads, useCache);
            const auto reference =
                EvolutionEngine(mod, fitness, params).run();

            const auto path = tmpPath(
                "kill_" + std::to_string(threads) +
                (useCache ? "_c" : "_n"));
            params.checkpointPath = path;
            params.checkpointInterval = 1;

            const pid_t pid = ::fork();
            ASSERT_GE(pid, 0);
            if (pid == 0) {
                // Child: die abruptly after generation 5's checkpoint.
                EvolutionEngine child(mod, fitness, params);
                child.run([](const GenerationLog& log,
                             const SearchResult&) {
                    if (log.generation == 6)
                        std::_Exit(0);
                });
                std::_Exit(1); // Should have died mid-run.
            }
            int status = 0;
            ASSERT_EQ(::waitpid(pid, &status, 0), pid);
            ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

            params.resume = true;
            const auto resumed =
                EvolutionEngine(mod, fitness, params).run();
            expectSameTrajectory(reference, resumed);
            std::remove(path.c_str());
        }
    }
}

TEST(CheckpointEngine, GracefulStopThenResumeIsBitIdentical)
{
    const auto mod = toyModule();
    ToyFitness fitness;
    auto params = resumeParams(2, true);
    const auto reference = EvolutionEngine(mod, fitness, params).run();

    const auto path = tmpPath("graceful");
    params.checkpointPath = path;
    params.checkpointInterval = 3;
    EvolutionEngine engine(mod, fitness, params);
    const auto partial =
        engine.run([&](const GenerationLog& log, const SearchResult&) {
            if (log.generation == 4)
                engine.requestStop(); // As the SIGINT handler would.
        });
    EXPECT_TRUE(partial.interrupted);
    EXPECT_EQ(partial.history.size(), 4u);

    params.resume = true;
    const auto resumed = EvolutionEngine(mod, fitness, params).run();
    EXPECT_FALSE(resumed.interrupted);
    expectSameTrajectory(reference, resumed);
    std::remove(path.c_str());
}

TEST(CheckpointEngine, ResumeExtendsAFinishedRun)
{
    const auto mod = toyModule();
    ToyFitness fitness;
    auto params = resumeParams(2, true);
    const auto reference = EvolutionEngine(mod, fitness, params).run();

    const auto path = tmpPath("extend");
    params.checkpointPath = path;
    params.generations = 5;
    (void)EvolutionEngine(mod, fitness, params).run();

    params.generations = 8;
    params.resume = true;
    const auto extended = EvolutionEngine(mod, fitness, params).run();
    expectSameTrajectory(reference, extended);

    // Resuming a run that already covers the budget is a no-op that
    // returns the stored state.
    const auto again = EvolutionEngine(mod, fitness, params).run();
    expectSameTrajectory(reference, again);
    std::remove(path.c_str());
}

TEST(CheckpointEngine, DamagedCheckpointDegradesToColdStart)
{
    const auto mod = toyModule();
    ToyFitness fitness;
    auto params = resumeParams(2, true);
    const auto reference = EvolutionEngine(mod, fitness, params).run();

    const auto path = tmpPath("damaged");
    params.checkpointPath = path;
    params.checkpointInterval = 2;
    (void)EvolutionEngine(mod, fitness, params).run();

    // Truncate the finished checkpoint: --resume must warn and rerun the
    // whole search from scratch, landing on the same trajectory.
    const auto full = readFile(path);
    writeFile(path, full.substr(0, full.size() / 2));
    params.resume = true;
    const auto cold = EvolutionEngine(mod, fitness, params).run();
    expectSameTrajectory(reference, cold);
    std::remove(path.c_str());
}

TEST(CheckpointEngine, ScopeMismatchedCheckpointDegradesToColdStart)
{
    const auto mod = toyModule();
    ToyFitness fitness;
    auto params = resumeParams(2, true);
    const auto path = tmpPath("wrongscope");
    params.checkpointPath = path;
    (void)EvolutionEngine(mod, fitness, params).run();

    // A different seed is a different trajectory scope: resuming from
    // the seed-11 checkpoint must cold-start, not splice histories.
    auto other = params;
    other.seed = 12;
    other.resume = true;
    const auto fresh = EvolutionEngine(mod, fitness, other).run();
    auto otherRef = other;
    otherRef.checkpointPath.clear();
    otherRef.resume = false;
    const auto reference =
        EvolutionEngine(mod, fitness, otherRef).run();
    expectSameTrajectory(reference, fresh);
    std::remove(path.c_str());
}

} // namespace
} // namespace gevo::core
