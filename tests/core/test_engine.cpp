#include "core/engine.h"

#include <gtest/gtest.h>

#include "ir/parser.h"
#include "sim/device_config.h"
#include "sim/device_memory.h"
#include "sim/executor.h"
#include "sim/program.h"

namespace gevo::core {
namespace {

/// Toy optimization target: computes out[tid] = tid*2 but wastes most of
/// its time in a pointless scratch-zeroing loop (a miniature of the
/// ADEPT-V0 Sec VI-C bottleneck). The fitness function validates the
/// output array exactly, so only edits that keep the result intact pass.
constexpr const char* kToyKernel = R"(
kernel @toy params 1 regs 24 shared 512 local 0 {
entry:
    r1 = tid
    r2 = mov 0
    br memset
memset:
    r3 = mul.i32 r2, 4
    r4 = cvt.i32.i64 r3
    st.i32.shared r4, 0
    r2 = add.i32 r2, 1
    r5 = cmp.lt.i32 r2, 96
    brc r5, memset, work
work:
    r6 = mul.i32 r1, 2
    r7 = cvt.i32.i64 r1
    r8 = mul.i64 r7, 4
    r9 = add.i64 r0, r8
    st.i32.global r9, r6
    ret
}
)";

class ToyFitness : public FitnessFunction {
  public:
    FitnessResult
    evaluate(const CompiledVariant& variant) const override
    {
        const auto* prog = variant.programs.find("toy");
        if (prog == nullptr)
            return FitnessResult::fail("kernel missing");
        sim::DeviceMemory mem(1 << 16);
        const auto out = mem.alloc(64 * 4);
        const auto res = sim::launchKernel(
            sim::p100(), mem, *prog, {1, 64},
            {static_cast<std::uint64_t>(out)});
        if (!res.ok())
            return FitnessResult::fail(res.fault.detail);
        for (int t = 0; t < 64; ++t) {
            if (mem.read<std::int32_t>(out + t * 4) != t * 2)
                return FitnessResult::fail("wrong output");
        }
        return FitnessResult::pass(res.stats.ms);
    }

    std::string name() const override { return "toy"; }
};

ir::Module
toyModule()
{
    auto res = ir::parseModule(kToyKernel);
    EXPECT_TRUE(res.ok) << res.error;
    return std::move(res.module);
}

TEST(Fitness, BaselinePasses)
{
    const auto mod = toyModule();
    ToyFitness fitness;
    const auto result = evaluateVariant(mod, {}, fitness);
    EXPECT_TRUE(result.valid) << result.failReason;
    EXPECT_GT(result.ms(), 0.0);
}

TEST(Fitness, BreakingEditIsInvalid)
{
    const auto mod = toyModule();
    ToyFitness fitness;
    // Replace the work-loop multiplier: output becomes wrong.
    const auto& instrs = mod.function(0).blocks[2].instrs;
    mut::Edit e;
    e.kind = mut::EditKind::OperandReplace;
    e.srcUid = instrs[0].uid; // r6 = mul.i32 r1, 2
    e.opIndex = 1;
    e.newOperand = ir::Operand::imm(3);
    const auto result = evaluateVariant(mod, {e}, fitness);
    EXPECT_FALSE(result.valid);
    EXPECT_EQ(result.failReason, "wrong output");
}

TEST(Fitness, LoopRemovalEditIsValidAndFaster)
{
    const auto mod = toyModule();
    ToyFitness fitness;
    const auto baseline = evaluateVariant(mod, {}, fitness);
    // The golden edit: loop branch condition <- 0.
    mut::Edit e;
    e.kind = mut::EditKind::OperandReplace;
    e.srcUid = mod.function(0).blocks[1].instrs.back().uid;
    e.opIndex = 0;
    e.newOperand = ir::Operand::imm(0);
    const auto result = evaluateVariant(mod, {e}, fitness);
    ASSERT_TRUE(result.valid) << result.failReason;
    EXPECT_LT(result.ms(), baseline.ms() * 0.3);
}

TEST(Engine, FindsTheLoopRemoval)
{
    const auto mod = toyModule();
    ToyFitness fitness;
    EvolutionParams params;
    params.populationSize = 24;
    params.generations = 25;
    params.elitism = 2;
    params.seed = 5;
    EvolutionEngine engine(mod, fitness, params);
    const auto result = engine.run();
    EXPECT_TRUE(result.best.fitness.valid);
    // The memset loop dominates; the search must find a large win.
    EXPECT_GT(result.speedup(), 2.0)
        << "best " << result.best.fitness.ms() << " baseline "
        << result.baselineMs;
}

TEST(Engine, HistoryIsMonotoneAndComplete)
{
    const auto mod = toyModule();
    ToyFitness fitness;
    EvolutionParams params;
    params.populationSize = 12;
    params.generations = 8;
    params.seed = 11;
    EvolutionEngine engine(mod, fitness, params);
    const auto result = engine.run();
    ASSERT_EQ(result.history.size(), 8u);
    for (std::size_t g = 1; g < result.history.size(); ++g) {
        EXPECT_LE(result.history[g].bestMs, result.history[g - 1].bestMs);
        EXPECT_EQ(result.history[g].generation,
                  static_cast<std::uint32_t>(g + 1));
    }
}

TEST(Engine, DeterministicForEqualSeeds)
{
    const auto mod = toyModule();
    ToyFitness fitness;
    EvolutionParams params;
    params.populationSize = 10;
    params.generations = 5;
    params.seed = 77;
    const auto a = EvolutionEngine(mod, fitness, params).run();
    const auto b = EvolutionEngine(mod, fitness, params).run();
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t g = 0; g < a.history.size(); ++g) {
        EXPECT_DOUBLE_EQ(a.history[g].bestMs, b.history[g].bestMs);
        EXPECT_DOUBLE_EQ(a.history[g].meanMs, b.history[g].meanMs);
    }
    EXPECT_EQ(a.best.edits.size(), b.best.edits.size());
}

TEST(Engine, DifferentSeedsExploreDifferently)
{
    const auto mod = toyModule();
    ToyFitness fitness;
    EvolutionParams params;
    params.populationSize = 10;
    params.generations = 4;
    params.seed = 1;
    const auto a = EvolutionEngine(mod, fitness, params).run();
    params.seed = 2;
    const auto b = EvolutionEngine(mod, fitness, params).run();
    bool anyDiff = a.best.edits.size() != b.best.edits.size();
    for (std::size_t g = 0; !anyDiff && g < a.history.size(); ++g)
        anyDiff = a.history[g].meanMs != b.history[g].meanMs;
    EXPECT_TRUE(anyDiff);
}

TEST(Engine, CallbackSeesEveryGeneration)
{
    const auto mod = toyModule();
    ToyFitness fitness;
    EvolutionParams params;
    params.populationSize = 8;
    params.generations = 6;
    params.seed = 3;
    EvolutionEngine engine(mod, fitness, params);
    int calls = 0;
    engine.run([&](const GenerationLog& log, const SearchResult&) {
        ++calls;
        EXPECT_EQ(log.generation, static_cast<std::uint32_t>(calls));
    });
    EXPECT_EQ(calls, 6);
}

TEST(Engine, SpeedupIsOneWhenNothingImproves)
{
    // Zero generations: best == baseline.
    const auto mod = toyModule();
    ToyFitness fitness;
    EvolutionParams params;
    params.populationSize = 4;
    params.elitism = 1;
    params.generations = 0;
    params.seed = 9;
    const auto result = EvolutionEngine(mod, fitness, params).run();
    EXPECT_DOUBLE_EQ(result.speedup(), 1.0);
    EXPECT_TRUE(result.history.empty());
}

} // namespace
} // namespace gevo::core
