/// Evaluation-backend seam: in-process vs isolated trajectory equality,
/// and crash/hang/garbage fault handling — a variant that takes its
/// worker down must be penalized and quarantined while the search runs
/// to completion.

#include "core/eval_backend.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/engine.h"
#include "ir/parser.h"
#include "mutation/edit.h"
#include "sim/device_config.h"
#include "sim/device_memory.h"
#include "sim/executor.h"
#include "sim/program.h"

namespace gevo::core {
namespace {

/// Same toy optimization target as test_engine.cpp: a pointless
/// scratch-zeroing loop dominates the runtime.
constexpr const char* kToyKernel = R"(
kernel @toy params 1 regs 24 shared 512 local 0 {
entry:
    r1 = tid
    r2 = mov 0
    br memset
memset:
    r3 = mul.i32 r2, 4
    r4 = cvt.i32.i64 r3
    st.i32.shared r4, 0
    r2 = add.i32 r2, 1
    r5 = cmp.lt.i32 r2, 96
    brc r5, memset, work
work:
    r6 = mul.i32 r1, 2
    r7 = cvt.i32.i64 r1
    r8 = mul.i64 r7, 4
    r9 = add.i64 r0, r8
    st.i32.global r9, r6
    ret
}
)";

class ToyFitness : public FitnessFunction {
  public:
    FitnessResult
    evaluate(const CompiledVariant& variant) const override
    {
        const auto* prog = variant.programs.find("toy");
        if (prog == nullptr)
            return FitnessResult::fail("kernel missing");
        sim::DeviceMemory mem(1 << 16);
        const auto out = mem.alloc(64 * 4);
        const auto res = sim::launchKernel(
            sim::p100(), mem, *prog, {1, 64},
            {static_cast<std::uint64_t>(out)});
        if (!res.ok())
            return FitnessResult::fail(res.fault.detail);
        for (int t = 0; t < 64; ++t) {
            if (mem.read<std::int32_t>(out + t * 4) != t * 2)
                return FitnessResult::fail("wrong output");
        }
        return FitnessResult::pass(res.stats.ms);
    }

    std::string name() const override { return "toy"; }
};

ir::Module
toyModule()
{
    auto res = ir::parseModule(kToyKernel);
    EXPECT_TRUE(res.ok) << res.error;
    return std::move(res.module);
}

EvolutionParams
smallParams()
{
    EvolutionParams params;
    params.populationSize = 10;
    params.generations = 5;
    params.elitism = 2;
    params.seed = 7;
    params.threads = 2;
    return params;
}

/// Scoped GEVO_FAULT_INJECT setting (the backend re-reads it at
/// construction, i.e. inside EvolutionEngine::run).
class ScopedFaultInject {
  public:
    explicit ScopedFaultInject(const char* spec)
    {
        ::setenv("GEVO_FAULT_INJECT", spec, 1);
    }
    ~ScopedFaultInject() { ::unsetenv("GEVO_FAULT_INJECT"); }
};

/// The deterministic trajectory fields of two runs must agree exactly;
/// cacheHits/cacheMisses are deliberately not compared (they can wobble
/// under concurrency and are not part of the trajectory).
void
expectSameTrajectory(const SearchResult& a, const SearchResult& b)
{
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t g = 0; g < a.history.size(); ++g) {
        const GenerationLog& la = a.history[g];
        const GenerationLog& lb = b.history[g];
        EXPECT_EQ(la.generation, lb.generation);
        EXPECT_EQ(la.bestMs, lb.bestMs) << "gen " << la.generation;
        EXPECT_EQ(la.meanMs, lb.meanMs) << "gen " << la.generation;
        EXPECT_EQ(la.validCount, lb.validCount) << "gen " << la.generation;
        EXPECT_EQ(la.evaluations, lb.evaluations)
            << "gen " << la.generation;
        EXPECT_EQ(la.islandBestMs, lb.islandBestMs)
            << "gen " << la.generation;
        EXPECT_EQ(mut::serializeEdits(la.bestEdits),
                  mut::serializeEdits(lb.bestEdits))
            << "gen " << la.generation;
    }
    EXPECT_EQ(mut::serializeEdits(a.best.edits),
              mut::serializeEdits(b.best.edits));
    EXPECT_EQ(a.best.fitness.ms(), b.best.fitness.ms());
}

std::size_t
totalFailures(const SearchResult& r)
{
    std::size_t n = 0;
    for (const auto& log : r.history)
        n += log.workerCrashes + log.workerTimeouts + log.protocolErrors;
    return n;
}

TEST(EvalBackend, FailureNames)
{
    EXPECT_EQ(evalFailureName(EvalFailure::WorkerCrash), "crash");
    EXPECT_EQ(evalFailureName(EvalFailure::WorkerTimeout), "timeout");
    EXPECT_EQ(evalFailureName(EvalFailure::ProtocolError), "protocol");
}

TEST(EvalBackend, IsolatedMatchesInProcessTrajectory)
{
    const auto mod = toyModule();
    ToyFitness fitness;
    for (const bool useCache : {true, false}) {
        auto params = smallParams();
        params.useCache = useCache;
        params.backend = EvalBackendKind::InProcess;
        const auto inProcess =
            EvolutionEngine(mod, fitness, params).run();
        params.backend = EvalBackendKind::Isolated;
        const auto isolated =
            EvolutionEngine(mod, fitness, params).run();
        expectSameTrajectory(inProcess, isolated);
        EXPECT_EQ(isolated.evalFailures, 0u);
        EXPECT_EQ(isolated.quarantined, 0u);
    }
}

TEST(EvalBackend, CrashIsPenalizedQuarantinedAndSearchCompletes)
{
    const auto mod = toyModule();
    ToyFitness fitness;
    ScopedFaultInject fault("crash@4");
    auto params = smallParams();
    params.backend = EvalBackendKind::Isolated;
    const auto result = EvolutionEngine(mod, fitness, params).run();

    ASSERT_EQ(result.history.size(), params.generations);
    EXPECT_EQ(totalFailures(result), 1u);
    EXPECT_EQ(result.evalFailures, 1u);
    EXPECT_EQ(result.quarantined, 1u);
    std::size_t crashes = 0;
    for (const auto& log : result.history)
        crashes += log.workerCrashes;
    EXPECT_EQ(crashes, 1u);
}

TEST(EvalBackend, HangIsKilledByTheWatchdog)
{
    const auto mod = toyModule();
    ToyFitness fitness;
    ScopedFaultInject fault("hang@3");
    auto params = smallParams();
    params.backend = EvalBackendKind::Isolated;
    // Generous enough that a legitimate toy evaluation never trips it
    // even on a loaded CI machine — only the injected infinite hang can.
    params.evalTimeoutMs = 5000;
    const auto result = EvolutionEngine(mod, fitness, params).run();

    ASSERT_EQ(result.history.size(), params.generations);
    std::size_t timeouts = 0;
    for (const auto& log : result.history)
        timeouts += log.workerTimeouts;
    EXPECT_EQ(timeouts, 1u);
    EXPECT_EQ(result.quarantined, 1u);
}

TEST(EvalBackend, GarbageResponseIsAProtocolError)
{
    const auto mod = toyModule();
    ToyFitness fitness;
    ScopedFaultInject fault("garbage@2");
    auto params = smallParams();
    params.backend = EvalBackendKind::Isolated;
    const auto result = EvolutionEngine(mod, fitness, params).run();

    ASSERT_EQ(result.history.size(), params.generations);
    std::size_t protocol = 0;
    for (const auto& log : result.history)
        protocol += log.protocolErrors;
    EXPECT_EQ(protocol, 1u);
    EXPECT_EQ(result.quarantined, 1u);
}

TEST(EvalBackend, QuarantineServesRecurringGenotypesWithoutRedispatch)
{
    const auto mod = toyModule();
    ToyFitness fitness;
    // Every dispatched evaluation crashes its worker. On the reference
    // path every member (elites included) is re-screened each
    // generation, so gen 2 onward must serve the carried-over genotypes
    // from the quarantine set instead of burning a fresh worker on them.
    ScopedFaultInject fault("crash@0+");
    auto params = smallParams();
    params.useCache = false;
    params.backend = EvalBackendKind::Isolated;
    const auto result = EvolutionEngine(mod, fitness, params).run();

    ASSERT_EQ(result.history.size(), params.generations);
    EXPECT_GT(result.evalFailures, 0u);
    EXPECT_GT(result.quarantined, 0u);
    std::size_t quarantineHits = 0;
    for (const auto& log : result.history)
        quarantineHits += log.quarantineHits;
    EXPECT_GT(quarantineHits, 0u);
    // Nothing ever evaluated successfully, so the best is the baseline.
    EXPECT_TRUE(result.best.edits.empty());
    EXPECT_EQ(result.speedup(), 1.0);
}

TEST(EvalBackend, FaultScheduleIsThreadCountIndependent)
{
    const auto mod = toyModule();
    ToyFitness fitness;
    SearchResult results[2];
    for (int i = 0; i < 2; ++i) {
        ScopedFaultInject fault("crash@6,garbage@11");
        auto params = smallParams();
        params.backend = EvalBackendKind::Isolated;
        params.threads = i == 0 ? 1 : 4;
        results[i] = EvolutionEngine(mod, fitness, params).run();
    }
    expectSameTrajectory(results[0], results[1]);
    EXPECT_EQ(totalFailures(results[0]), totalFailures(results[1]));
    EXPECT_EQ(results[0].quarantined, results[1].quarantined);
}

TEST(EvalBackendDeath, MalformedFaultSpecIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const auto mod = toyModule();
    ToyFitness fitness;
    ScopedFaultInject fault("crash@notanumber");
    auto params = smallParams();
    params.backend = EvalBackendKind::Isolated;
    EXPECT_DEATH(EvolutionEngine(mod, fitness, params).run(),
                 "GEVO_FAULT_INJECT");
}

} // namespace
} // namespace gevo::core
