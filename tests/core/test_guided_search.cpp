/// Diagnosis-driven search end-to-end: guided sampling and self-adaptive
/// operator rates must be deterministic across thread counts, cache
/// on/off and evaluation backends, and must resume bit-identically from
/// a mid-run checkpoint — the guided heat profile is recomputed from the
/// island elite, never persisted, so a resumed run has to re-derive it.

#include "core/engine.h"

#include <gtest/gtest.h>

#include <cstdio>

#include <sys/wait.h>
#include <unistd.h>

#include "ir/parser.h"
#include "mutation/edit.h"
#include "sim/device_config.h"
#include "sim/device_memory.h"
#include "sim/executor.h"
#include "sim/program.h"

namespace gevo::core {
namespace {

/// The toy optimization target with source attribution: the pointless
/// memset loop (the hot spot a profile flags) carries its own locs, so
/// the guided sampler has a real heat gradient to exploit.
constexpr const char* kToyKernel = R"(
kernel @toy params 1 regs 24 shared 512 local 0 {
entry:
    r1 = tid @"toy.cu:3"
    r2 = mov 0 @"toy.cu:4"
    br memset
memset:
    r3 = mul.i32 r2, 4 @"toy.cu:6"
    r4 = cvt.i32.i64 r3 @"toy.cu:6"
    st.i32.shared r4, 0 @"toy.cu:7"
    r2 = add.i32 r2, 1 @"toy.cu:8"
    r5 = cmp.lt.i32 r2, 96 @"toy.cu:8"
    brc r5, memset, work
work:
    r6 = mul.i32 r1, 2 @"toy.cu:11"
    r7 = cvt.i32.i64 r1 @"toy.cu:12"
    r8 = mul.i64 r7, 4 @"toy.cu:12"
    r9 = add.i64 r0, r8 @"toy.cu:12"
    st.i32.global r9, r6 @"toy.cu:13"
    ret
}
)";

class ToyFitness : public FitnessFunction {
  public:
    FitnessResult
    evaluate(const CompiledVariant& variant) const override
    {
        const auto* prog = variant.programs.find("toy");
        if (prog == nullptr)
            return FitnessResult::fail("kernel missing");
        sim::DeviceMemory mem(1 << 16);
        const auto out = mem.alloc(64 * 4);
        const auto res = sim::launchKernel(
            sim::p100(), mem, *prog, {1, 64},
            {static_cast<std::uint64_t>(out)});
        if (!res.ok())
            return FitnessResult::fail(res.fault.detail);
        for (int t = 0; t < 64; ++t) {
            if (mem.read<std::int32_t>(out + t * 4) != t * 2)
                return FitnessResult::fail("wrong output");
        }
        return FitnessResult::pass(res.stats.ms);
    }

    bool
    profileVariant(const CompiledVariant& variant,
                   ProfileSummary* out) const override
    {
        const auto* prog = variant.programs.find("toy");
        if (prog == nullptr)
            return false;
        sim::DeviceMemory mem(1 << 16);
        const auto outBuf = mem.alloc(64 * 4);
        const auto res = sim::launchKernel(
            sim::p100(), mem, *prog, {1, 64},
            {static_cast<std::uint64_t>(outBuf)}, /*profileLocs=*/true);
        if (!res.ok())
            return false;
        *out = ProfileSummary{};
        out->accumulateLaunch(res.stats);
        return true;
    }

    std::string name() const override { return "toy"; }
};

ir::Module
toyModule()
{
    auto res = ir::parseModule(kToyKernel);
    EXPECT_TRUE(res.ok) << res.error;
    return std::move(res.module);
}

EvolutionParams
guidedParams()
{
    EvolutionParams params;
    params.populationSize = 10;
    params.generations = 8;
    params.elitism = 2;
    params.seed = 17;
    params.islands = 2;
    params.migrationInterval = 3;
    params.migrationCount = 2;
    params.samplerKind = SamplerKind::Guided;
    return params;
}

SearchResult
run(const ir::Module& mod, EvolutionParams params)
{
    ToyFitness fitness;
    return EvolutionEngine(mod, fitness, params).run();
}

void
expectSameTrajectory(const SearchResult& a, const SearchResult& b)
{
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t g = 0; g < a.history.size(); ++g) {
        const GenerationLog& la = a.history[g];
        const GenerationLog& lb = b.history[g];
        EXPECT_EQ(la.bestMs, lb.bestMs) << "gen " << la.generation;
        EXPECT_EQ(la.meanMs, lb.meanMs) << "gen " << la.generation;
        EXPECT_EQ(la.validCount, lb.validCount) << "gen " << la.generation;
        EXPECT_EQ(la.islandBestMs, lb.islandBestMs)
            << "gen " << la.generation;
        EXPECT_EQ(mut::serializeEdits(la.bestEdits),
                  mut::serializeEdits(lb.bestEdits))
            << "gen " << la.generation;
        ASSERT_EQ(la.islandRates.size(), lb.islandRates.size());
        for (std::size_t i = 0; i < la.islandRates.size(); ++i) {
            EXPECT_EQ(la.islandRates[i].wDelete,
                      lb.islandRates[i].wDelete);
            EXPECT_EQ(la.islandRates[i].wOperand,
                      lb.islandRates[i].wOperand);
        }
    }
    EXPECT_EQ(mut::serializeEdits(a.best.edits),
              mut::serializeEdits(b.best.edits));
    EXPECT_EQ(a.best.fitness.ms(), b.best.fitness.ms());
}

TEST(GuidedSearch, DeterministicAcrossThreadsCacheAndBackend)
{
    // Sampling happens on the engine thread only, so the guided
    // trajectory must not depend on any evaluation-side knob: the full
    // threads x cache x backend matrix lands on one trajectory.
    const auto mod = toyModule();
    auto params = guidedParams();
    const auto reference = run(mod, params);
    EXPECT_TRUE(reference.best.fitness.valid);

    for (const std::uint32_t threads : {1u, 4u}) {
        for (const bool useCache : {true, false}) {
            for (const auto backend : {EvalBackendKind::InProcess,
                                       EvalBackendKind::Isolated}) {
                SCOPED_TRACE(testing::Message()
                             << "threads=" << threads
                             << " cache=" << useCache << " backend="
                             << (backend == EvalBackendKind::Isolated
                                     ? "isolated"
                                     : "inprocess"));
                params = guidedParams();
                params.threads = threads;
                params.useCache = useCache;
                params.backend = backend;
                expectSameTrajectory(reference, run(mod, params));
            }
        }
    }
}

TEST(GuidedSearch, GuidedTrajectoryDivergesFromUniform)
{
    // The seam must actually change the draw sequence: same seed, same
    // budget, different sampler -> different search. (Both are
    // deterministic, so this is a fixed, reproducible divergence.)
    const auto mod = toyModule();
    auto params = guidedParams();
    const auto guided = run(mod, params);
    params.samplerKind = SamplerKind::Uniform;
    const auto uniform = run(mod, params);

    bool diverged =
        mut::serializeEdits(guided.best.edits) !=
        mut::serializeEdits(uniform.best.edits);
    for (std::size_t g = 0;
         !diverged && g < guided.history.size(); ++g) {
        diverged = guided.history[g].meanMs != uniform.history[g].meanMs;
    }
    EXPECT_TRUE(diverged);
}

TEST(GuidedSearch, AdaptiveRatesAreDeterministicAndLogged)
{
    const auto mod = toyModule();
    auto params = guidedParams();
    params.adaptRates = true;
    const auto reference = run(mod, params);

    // One rate tuple per island per generation, every weight positive.
    for (const auto& log : reference.history) {
        ASSERT_EQ(log.islandRates.size(), params.islands);
        for (const auto& rates : log.islandRates) {
            EXPECT_GT(rates.wDelete, 0.0);
            EXPECT_GT(rates.wOperand, 0.0);
        }
    }

    params.threads = 4;
    params.useCache = false;
    expectSameTrajectory(reference, run(mod, params));

    // Adaptation is off by default: no audit trail.
    params = guidedParams();
    params.adaptRates = false;
    const auto plain = run(mod, params);
    for (const auto& log : plain.history)
        EXPECT_TRUE(log.islandRates.empty());
}

TEST(GuidedSearch, KillAndResumeIsBitIdentical)
{
    // The kill -9 drill from test_checkpoint.cpp, with the full
    // diagnosis-driven configuration on: guided sampling + adaptive
    // rates. The checkpoint carries the rate state but NOT the guided
    // heat profile — the resumed engine must re-derive the heat from the
    // island elites and still land on the uninterrupted history.
    const auto mod = toyModule();
    ToyFitness fitness;
    auto params = guidedParams();
    params.adaptRates = true;
    const auto reference = run(mod, params);

    const std::string path =
        ::testing::TempDir() + "gevo_guided_resume.gevockpt";
    std::remove(path.c_str());
    params.checkpointPath = path;
    params.checkpointInterval = 1;

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        EvolutionEngine child(mod, fitness, params);
        child.run([](const GenerationLog& log, const SearchResult&) {
            if (log.generation == 5)
                std::_Exit(0);
        });
        std::_Exit(1); // Should have died mid-run.
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

    params.resume = true;
    const auto resumed = EvolutionEngine(mod, fitness, params).run();
    expectSameTrajectory(reference, resumed);
    std::remove(path.c_str());
}

TEST(GuidedSearch, FindsTheMemsetEscapeAtToyScale)
{
    // Not a statistical claim (see bench/discovery_quality for the
    // head-to-head) — just: the guided configuration still finds the
    // toy kernel's known win at this budget.
    const auto mod = toyModule();
    auto params = guidedParams();
    params.generations = 10;
    const auto result = run(mod, params);
    EXPECT_TRUE(result.best.fitness.valid);
    EXPECT_GT(result.speedup(), 1.5);
}

} // namespace
} // namespace gevo::core
