/// Island-model orchestrator: determinism across island counts and
/// thread counts, isolation without migration, and ring-migration
/// correctness.

#include "core/engine.h"

#include <gtest/gtest.h>

#include "ir/parser.h"
#include "mutation/edit.h"
#include "sim/device_config.h"
#include "sim/device_memory.h"
#include "sim/executor.h"
#include "sim/program.h"

namespace gevo::core {
namespace {

/// Same toy optimization target as test_engine.cpp: most time wasted in a
/// pointless scratch-zeroing loop that a single branch edit removes.
constexpr const char* kToyKernel = R"(
kernel @toy params 1 regs 24 shared 512 local 0 {
entry:
    r1 = tid
    r2 = mov 0
    br memset
memset:
    r3 = mul.i32 r2, 4
    r4 = cvt.i32.i64 r3
    st.i32.shared r4, 0
    r2 = add.i32 r2, 1
    r5 = cmp.lt.i32 r2, 96
    brc r5, memset, work
work:
    r6 = mul.i32 r1, 2
    r7 = cvt.i32.i64 r1
    r8 = mul.i64 r7, 4
    r9 = add.i64 r0, r8
    st.i32.global r9, r6
    ret
}
)";

class ToyFitness : public FitnessFunction {
  public:
    FitnessResult
    evaluate(const CompiledVariant& variant) const override
    {
        const auto* prog = variant.programs.find("toy");
        if (prog == nullptr)
            return FitnessResult::fail("kernel missing");
        sim::DeviceMemory mem(1 << 16);
        const auto out = mem.alloc(64 * 4);
        const auto res = sim::launchKernel(
            sim::p100(), mem, *prog, {1, 64},
            {static_cast<std::uint64_t>(out)});
        if (!res.ok())
            return FitnessResult::fail(res.fault.detail);
        for (int t = 0; t < 64; ++t) {
            if (mem.read<std::int32_t>(out + t * 4) != t * 2)
                return FitnessResult::fail("wrong output");
        }
        return FitnessResult::pass(res.stats.ms);
    }

    std::string name() const override { return "toy"; }
};

ir::Module
toyModule()
{
    auto res = ir::parseModule(kToyKernel);
    EXPECT_TRUE(res.ok) << res.error;
    return std::move(res.module);
}

SearchResult
runSearch(const ir::Module& mod, std::uint32_t islands,
          std::uint32_t threads, bool useCache = true,
          std::uint32_t migrationInterval = 3,
          std::uint32_t migrationCount = 2)
{
    ToyFitness fitness;
    EvolutionParams params;
    params.populationSize = 10;
    params.generations = 8;
    params.elitism = 2;
    params.seed = 33;
    params.threads = threads;
    params.useCache = useCache;
    params.islands = islands;
    params.migrationInterval = migrationInterval;
    params.migrationCount = migrationCount;
    return EvolutionEngine(mod, fitness, params).run();
}

void
expectSameTrajectory(const SearchResult& a, const SearchResult& b)
{
    EXPECT_EQ(mut::serializeEdits(a.best.edits),
              mut::serializeEdits(b.best.edits));
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t g = 0; g < a.history.size(); ++g) {
        EXPECT_DOUBLE_EQ(a.history[g].bestMs, b.history[g].bestMs);
        EXPECT_DOUBLE_EQ(a.history[g].meanMs, b.history[g].meanMs);
        EXPECT_EQ(a.history[g].validCount, b.history[g].validCount);
        ASSERT_EQ(a.history[g].islandBestMs.size(),
                  b.history[g].islandBestMs.size());
        for (std::size_t i = 0; i < a.history[g].islandBestMs.size(); ++i)
            EXPECT_DOUBLE_EQ(a.history[g].islandBestMs[i],
                             b.history[g].islandBestMs[i]);
        EXPECT_EQ(mut::serializeEdits(a.history[g].bestEdits),
                  mut::serializeEdits(b.history[g].bestEdits));
    }
}

TEST(Island, DeterministicAcrossRepeatsAndThreads)
{
    const auto mod = toyModule();
    for (const std::uint32_t islands : {1u, 2u, 4u}) {
        const auto one = runSearch(mod, islands, 1);
        const auto oneAgain = runSearch(mod, islands, 1);
        const auto four = runSearch(mod, islands, 4);
        expectSameTrajectory(one, oneAgain);
        expectSameTrajectory(one, four);
        ASSERT_EQ(one.history.back().islandBestMs.size(), islands);
    }
}

TEST(Island, CacheIsTrajectoryNeutralWithIslands)
{
    const auto mod = toyModule();
    const auto cached = runSearch(mod, 3, 1, true);
    const auto uncached = runSearch(mod, 3, 1, false);
    expectSameTrajectory(cached, uncached);
    EXPECT_GT(cached.cacheSummary.served, 0u);
    EXPECT_LT(cached.cacheSummary.evaluated,
              uncached.cacheSummary.evaluated);
}

TEST(Island, IsolatedIslandZeroMatchesSingleIslandRun)
{
    // With migration off, island 0 of a multi-island run must evolve
    // exactly like a 1-island search: its RNG stream is seeded with the
    // search seed directly and islands share nothing but the caches
    // (which are trajectory-neutral).
    const auto mod = toyModule();
    const auto single = runSearch(mod, 1, 1);
    const auto pair = runSearch(mod, 2, 1, true, /*interval=*/0);
    ASSERT_EQ(single.history.size(), pair.history.size());
    for (std::size_t g = 0; g < single.history.size(); ++g) {
        EXPECT_DOUBLE_EQ(single.history[g].islandBestMs[0],
                         pair.history[g].islandBestMs[0]);
    }
}

TEST(Island, RingMigrationPropagatesBest)
{
    // With migration every generation, copies of island i's current best
    // replace island (i+1)'s worst after generation g; elitism keeps them
    // alive, so the receiver's best-so-far at g+1 can never be worse than
    // the sender's best-so-far at g.
    const auto mod = toyModule();
    const std::uint32_t islands = 3;
    const auto result =
        runSearch(mod, islands, 1, true, /*interval=*/1, /*count=*/2);
    for (std::size_t g = 0; g + 1 < result.history.size(); ++g) {
        const auto& now = result.history[g].islandBestMs;
        const auto& next = result.history[g + 1].islandBestMs;
        for (std::uint32_t i = 0; i < islands; ++i)
            EXPECT_LE(next[(i + 1) % islands], now[i])
                << "gen " << g << " island " << i;
    }
}

TEST(Island, FirstMigrationWaitsAFullInterval)
{
    // "Migration every N generations" means the first transfer happens
    // after generation N — never after generation 0's seed population
    // (RingTopology guards gen 0 explicitly). With the interval equal to
    // the run length, the only migration fires after the final
    // generation's history entry, so the recorded history must be
    // identical to a fully isolated run; any earlier firing would couple
    // the islands and show up as a divergence.
    const auto mod = toyModule();
    const auto lastGenOnly =
        runSearch(mod, 2, 1, true, /*interval=*/8, /*count=*/2);
    const auto isolated =
        runSearch(mod, 2, 1, true, /*interval=*/0, /*count=*/2);
    expectSameTrajectory(lastGenOnly, isolated);
}

TEST(Island, MigrationChangesTheSearch)
{
    // Sanity: migration is actually happening — the coupled run diverges
    // from the isolated one.
    const auto mod = toyModule();
    const auto coupled = runSearch(mod, 2, 1, true, 1, 2);
    const auto isolated = runSearch(mod, 2, 1, true, 0, 2);
    bool anyDiff = false;
    for (std::size_t g = 0; !anyDiff && g < coupled.history.size(); ++g)
        anyDiff = coupled.history[g].meanMs != isolated.history[g].meanMs;
    EXPECT_TRUE(anyDiff);
}

TEST(Island, FitnessAwareMigrantsOnlyReplaceWorseResidents)
{
    // Unit-level semantics of Population::receiveMigrants under
    // params.fitnessAwareMigrants: a migrant takes its slot only when
    // strictly fitter than the resident it would evict.
    const auto mod = toyModule();
    EvolutionParams params;
    params.populationSize = 4;
    params.elitism = 1;
    params.fitnessAwareMigrants = true;
    Population pop(mod, params);
    Rng rng(1);
    pop.seed(rng);
    ASSERT_EQ(pop.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        pop.members()[i].fitness = FitnessResult::pass(10.0 + i);
        pop.members()[i].evaluated = true;
    }
    pop.sortByFitness(); // residents: 10, 11, 12, 13

    // Two migrants target the two worst slots (12, 13): 11.5 beats 12,
    // 20.0 loses to 13 and must be rejected.
    Individual strong;
    strong.fitness = FitnessResult::pass(11.5);
    strong.evaluated = true;
    Individual weak;
    weak.fitness = FitnessResult::pass(20.0);
    weak.evaluated = true;
    pop.receiveMigrants({strong, weak});

    std::vector<double> ms;
    for (const auto& m : pop.members())
        ms.push_back(m.fitness.ms());
    EXPECT_EQ(ms, (std::vector<double>{10.0, 11.0, 11.5, 13.0}));

    // Default policy: unconditional replacement of the worst slots.
    params.fitnessAwareMigrants = false;
    Population blind(mod, params);
    blind.seed(rng);
    for (std::size_t i = 0; i < 4; ++i) {
        blind.members()[i].fitness = FitnessResult::pass(10.0 + i);
        blind.members()[i].evaluated = true;
    }
    blind.sortByFitness();
    blind.receiveMigrants({strong, weak});
    ms.clear();
    for (const auto& m : blind.members())
        ms.push_back(m.fitness.ms());
    EXPECT_EQ(ms, (std::vector<double>{10.0, 11.0, 11.5, 20.0}));
}

TEST(Island, FitnessAwareMigrationIsDeterministicAndNeverHurts)
{
    // Engine-level: the fitness-aware policy is deterministic across
    // thread counts, and since migrants can only displace strictly worse
    // residents, every island's best-so-far stays monotone.
    const auto mod = toyModule();
    ToyFitness fitness;
    EvolutionParams params;
    params.populationSize = 10;
    params.generations = 8;
    params.elitism = 2;
    params.seed = 33;
    params.islands = 3;
    params.migrationInterval = 2;
    params.migrationCount = 2;
    params.fitnessAwareMigrants = true;
    const auto one = EvolutionEngine(mod, fitness, params).run();
    params.threads = 4;
    const auto four = EvolutionEngine(mod, fitness, params).run();
    expectSameTrajectory(one, four);
    for (std::size_t g = 0; g + 1 < one.history.size(); ++g) {
        for (std::size_t i = 0; i < params.islands; ++i)
            EXPECT_LE(one.history[g + 1].islandBestMs[i],
                      one.history[g].islandBestMs[i]);
    }
}

TEST(Island, GlobalBestIsBestOfIslands)
{
    const auto mod = toyModule();
    const auto result = runSearch(mod, 4, 1);
    for (const auto& log : result.history) {
        double minIsland = log.islandBestMs[0];
        for (const double ms : log.islandBestMs)
            minIsland = std::min(minIsland, ms);
        EXPECT_DOUBLE_EQ(log.bestMs, minIsland);
    }
}

} // namespace
} // namespace gevo::core
