/// Multi-objective selection and the device portfolio: domination and
/// NSGA-II scoring (with the deterministic tie-breaking that keeps
/// Pareto trajectories reproducible), Population's Pareto ordering,
/// PortfolioFitness aggregation, the objective/device list parsers, and
/// engine-level determinism of a Pareto search across thread counts,
/// backends and portfolio wrapping.

#include "core/objectives.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/engine.h"
#include "core/population.h"
#include "core/portfolio.h"
#include "core/variant_cache.h"
#include "ir/parser.h"
#include "sim/device_config.h"
#include "sim/device_memory.h"
#include "sim/executor.h"
#include "sim/program.h"

namespace gevo::core {
namespace {

// Same toy target as test_engine: a pointless scratch-zeroing loop
// dominates the runtime, and the fitness validates outputs exactly.
constexpr const char* kToyKernel = R"(
kernel @toy params 1 regs 24 shared 512 local 0 {
entry:
    r1 = tid
    r2 = mov 0
    br memset
memset:
    r3 = mul.i32 r2, 4
    r4 = cvt.i32.i64 r3
    st.i32.shared r4, 0
    r2 = add.i32 r2, 1
    r5 = cmp.lt.i32 r2, 96
    brc r5, memset, work
work:
    r6 = mul.i32 r1, 2
    r7 = cvt.i32.i64 r1
    r8 = mul.i64 r7, 4
    r9 = add.i64 r0, r8
    st.i32.global r9, r6
    ret
}
)";

/// Per-device-capable toy fitness (the app pattern: evaluate() is
/// evaluateOn() at the configured device, and the result carries the
/// full objective vector).
class ToyFitness : public FitnessFunction {
  public:
    FitnessResult
    evaluate(const CompiledVariant& variant) const override
    {
        return evaluateOn(variant, sim::p100());
    }

    FitnessResult
    evaluateOn(const CompiledVariant& variant,
               const sim::DeviceConfig& dev) const override
    {
        const auto* prog = variant.programs.find("toy");
        if (prog == nullptr)
            return FitnessResult::fail("kernel missing");
        sim::DeviceMemory mem(1 << 16);
        const auto out = mem.alloc(64 * 4);
        const auto res = sim::launchKernel(
            dev, mem, *prog, {1, 64}, {static_cast<std::uint64_t>(out)});
        if (!res.ok())
            return FitnessResult::fail(res.fault.detail);
        for (int t = 0; t < 64; ++t) {
            if (mem.read<std::int32_t>(out + t * 4) != t * 2)
                return FitnessResult::fail("wrong output");
        }
        return FitnessResult::pass(res.stats.ms, res.stats);
    }

    std::string name() const override { return "toy"; }
};

/// Synthetic per-device values, no simulator: P100 is fast but
/// traffic-heavy, V100 slow but lean — so worst/mean aggregation and
/// failure tagging are checkable exactly.
class StubFitness : public FitnessFunction {
  public:
    explicit StubFitness(bool failOnV100 = false) : failOnV100_(failOnV100)
    {
    }

    FitnessResult
    evaluate(const CompiledVariant& variant) const override
    {
        return evaluateOn(variant, sim::p100());
    }

    FitnessResult
    evaluateOn(const CompiledVariant&,
               const sim::DeviceConfig& dev) const override
    {
        if (dev.name == "P100")
            return FitnessResult::pass(2.0, 10.0, 1.0);
        if (failOnV100_)
            return FitnessResult::fail("stub says no");
        return FitnessResult::pass(4.0, 6.0, 3.0);
    }

    std::string name() const override { return "stub"; }

  private:
    bool failOnV100_;
};

ir::Module
toyModule()
{
    auto res = ir::parseModule(kToyKernel);
    EXPECT_TRUE(res.ok) << res.error;
    return std::move(res.module);
}

CompiledVariant
toyVariant(const ir::Module& mod)
{
    VariantCompiler compiler(mod);
    return compiler.compile({});
}

FitnessResult
vec(double t, double s, double d)
{
    return FitnessResult::pass(t, s, d);
}

const std::vector<Objective> kTimeSectors = {Objective::Time,
                                             Objective::Sectors};

// ---- FitnessResult accessors ----

TEST(FitnessResult, ScalarPassFillsOnlyTime)
{
    const auto r = FitnessResult::pass(2.5);
    EXPECT_TRUE(r.valid);
    ASSERT_EQ(r.objectives.size(), 1u);
    EXPECT_EQ(r.ms(), 2.5);
    // Missing dimensions project to 0 (neutral for minimization).
    EXPECT_EQ(r.objective(FitnessResult::kSectors), 0.0);
}

TEST(FitnessResult, InvalidProjectsToInfinity)
{
    const auto r = FitnessResult::fail("nope");
    EXPECT_FALSE(r.valid);
    EXPECT_TRUE(std::isinf(r.ms()));
    EXPECT_TRUE(std::isinf(r.objective(FitnessResult::kDivergence)));
    EXPECT_TRUE(FitnessResult::better(FitnessResult::pass(1e30), r));
}

// ---- domination ----

TEST(Dominates, RequiresNoWorseEverywhereStrictlyBetterSomewhere)
{
    const auto a = vec(1.0, 5.0, 0.0);
    const auto b = vec(2.0, 5.0, 0.0);
    const auto c = vec(2.0, 4.0, 0.0);
    EXPECT_TRUE(dominates(a, b, kTimeSectors));
    EXPECT_FALSE(dominates(b, a, kTimeSectors));
    // a vs c: better on time, worse on sectors — incomparable.
    EXPECT_FALSE(dominates(a, c, kTimeSectors));
    EXPECT_FALSE(dominates(c, a, kTimeSectors));
    // Equal vectors never dominate each other.
    EXPECT_FALSE(dominates(a, a, kTimeSectors));
}

TEST(Dominates, ProjectionIgnoresUnselectedObjectives)
{
    // Worse sectors, but the search only minimizes time.
    const auto a = vec(1.0, 100.0, 0.0);
    const auto b = vec(2.0, 1.0, 0.0);
    EXPECT_TRUE(dominates(a, b, {Objective::Time}));
}

TEST(Dominates, InvalidNeverDominatesAndIsAlwaysDominated)
{
    const auto bad = FitnessResult::fail("crash");
    const auto good = vec(1.0, 1.0, 1.0);
    EXPECT_FALSE(dominates(bad, good, kTimeSectors));
    EXPECT_TRUE(dominates(good, bad, kTimeSectors));
    EXPECT_FALSE(dominates(bad, bad, kTimeSectors));
}

// ---- NSGA-II scores ----

TEST(ParetoScores, RanksLayerTheFronts)
{
    // f0 and f1 are mutually incomparable (rank 0); f2 is dominated by
    // both (rank 1); f3 by everything (rank 2).
    const auto f0 = vec(1.0, 4.0, 0.0);
    const auto f1 = vec(2.0, 2.0, 0.0);
    const auto f2 = vec(3.0, 5.0, 0.0);
    const auto f3 = vec(4.0, 6.0, 0.0);
    const std::vector<const FitnessResult*> pool = {&f0, &f1, &f2, &f3};
    const std::vector<std::string> keys = {"a", "b", "c", "d"};
    const auto scores = paretoScores(pool, keys, kTimeSectors);
    EXPECT_EQ(scores[0].rank, 0u);
    EXPECT_EQ(scores[1].rank, 0u);
    EXPECT_EQ(scores[2].rank, 1u);
    EXPECT_EQ(scores[3].rank, 2u);
    // Two-member fronts: everyone is a boundary, crowding infinite.
    EXPECT_TRUE(std::isinf(scores[0].crowding));
    EXPECT_TRUE(std::isinf(scores[1].crowding));
}

TEST(ParetoScores, BoundariesInfiniteInteriorFinite)
{
    const auto f0 = vec(1.0, 9.0, 0.0);
    const auto f1 = vec(2.0, 5.0, 0.0);
    const auto f2 = vec(3.0, 1.0, 0.0);
    const std::vector<const FitnessResult*> pool = {&f0, &f1, &f2};
    const auto scores =
        paretoScores(pool, {"a", "b", "c"}, kTimeSectors);
    EXPECT_TRUE(std::isinf(scores[0].crowding));
    EXPECT_TRUE(std::isinf(scores[2].crowding));
    // Interior point, normalized gaps: (3-1)/(3-1) + (9-1)/(9-1) = 2.
    EXPECT_DOUBLE_EQ(scores[1].crowding, 2.0);
    EXPECT_FALSE(std::isinf(scores[1].crowding));
}

TEST(ParetoScores, IndependentOfInputOrder)
{
    // Includes duplicate objective vectors, the case where naive
    // crowding sweeps become order-dependent.
    const std::vector<FitnessResult> pool = {
        vec(1.0, 9.0, 0.0), vec(2.0, 5.0, 0.0), vec(2.0, 5.0, 1.0),
        vec(3.0, 1.0, 0.0), vec(5.0, 5.0, 0.0),
    };
    const std::vector<std::string> keys = {"k0", "k1", "k2", "k3", "k4"};
    std::vector<std::size_t> perm = {0, 1, 2, 3, 4};
    std::vector<ParetoScore> reference;
    do {
        std::vector<const FitnessResult*> rs;
        std::vector<std::string> ks;
        for (const auto i : perm) {
            rs.push_back(&pool[i]);
            ks.push_back(keys[i]);
        }
        const auto scores = paretoScores(rs, ks, kTimeSectors);
        // Un-permute so every iteration is comparable.
        std::vector<ParetoScore> unperm(pool.size());
        for (std::size_t p = 0; p < perm.size(); ++p)
            unperm[perm[p]] = scores[p];
        if (reference.empty()) {
            reference = unperm;
            continue;
        }
        for (std::size_t i = 0; i < pool.size(); ++i) {
            EXPECT_EQ(unperm[i].rank, reference[i].rank) << i;
            EXPECT_EQ(unperm[i].crowding, reference[i].crowding) << i;
        }
    } while (std::next_permutation(perm.begin(), perm.end()));
}

// ---- parsers ----

TEST(ObjectiveNames, RoundTripAndAliases)
{
    EXPECT_EQ(objectiveByName("cycles"), Objective::Time);
    EXPECT_EQ(objectiveByName("MS"), Objective::Time);
    EXPECT_EQ(objectiveByName("memory"), Objective::Sectors);
    EXPECT_EQ(objectiveByName("div"), Objective::Divergence);
    const auto all = resolveObjectiveList("all");
    EXPECT_EQ(all.size(), 3u);
    EXPECT_EQ(objectiveListName(all), "cycles,sectors,divergence");
    const auto two = resolveObjectiveList(" cycles , sectors ");
    EXPECT_EQ(objectiveListName(two), "cycles,sectors");
}

TEST(ObjectiveNamesDeathTest, UnknownAndDuplicateAreFatalWithListing)
{
    EXPECT_EXIT(objectiveByName("watts"),
                ::testing::ExitedWithCode(1),
                "unknown objective 'watts' \\(registered: cycles, "
                "sectors, divergence\\)");
    EXPECT_EXIT(resolveObjectiveList("cycles,cycles"),
                ::testing::ExitedWithCode(1), "duplicate objective");
    EXPECT_EXIT(resolveObjectiveList(""), ::testing::ExitedWithCode(1),
                "empty objective name");
}

TEST(DeviceNames, ListResolvesCaseInsensitivelyWithAll)
{
    const auto two = sim::resolveDeviceList("p100, v100");
    ASSERT_EQ(two.size(), 2u);
    EXPECT_EQ(two[0].name, "P100");
    EXPECT_EQ(two[1].name, "V100");
    EXPECT_EQ(sim::resolveDeviceList("ALL").size(), 3u);
    EXPECT_EQ(sim::deviceByName("1080ti").name, "GTX1080Ti");
}

TEST(DeviceNamesDeathTest, UnknownDeviceIsFatalWithListing)
{
    EXPECT_EXIT(sim::deviceByName("K80"), ::testing::ExitedWithCode(1),
                "unknown device 'K80' \\(registered: P100, GTX1080Ti, "
                "V100\\)");
    EXPECT_EXIT(sim::resolveDeviceList("p100,,v100"),
                ::testing::ExitedWithCode(1), "empty device name");
    EXPECT_EXIT(deviceAggByName("median"), ::testing::ExitedWithCode(1),
                "unknown device aggregation");
}

// ---- Population Pareto ordering ----

Individual
member(std::uint64_t uid, FitnessResult fitness)
{
    mut::Edit e;
    e.kind = mut::EditKind::InstrDelete;
    e.srcUid = uid;
    Individual ind;
    ind.edits = {e};
    ind.fitness = std::move(fitness);
    ind.evaluated = true;
    return ind;
}

TEST(PopulationPareto, SortOrdersByRankThenCrowdingInvalidLast)
{
    const auto mod = toyModule();
    EvolutionParams params;
    params.populationSize = 6;
    params.selection = SelectionKind::Pareto;
    params.objectives = kTimeSectors;
    Population pop(mod, params);
    auto& m = pop.members();
    m.clear();
    m.push_back(member(1, vec(3.0, 5.0, 0.0)));  // rank 1
    m.push_back(member(2, FitnessResult::fail("crash"))); // last
    m.push_back(member(3, vec(1.0, 9.0, 0.0)));  // rank 0 boundary
    m.push_back(member(4, vec(2.0, 5.0, 0.0)));  // rank 0 interior
    m.push_back(member(5, vec(3.0, 1.0, 0.0)));  // rank 0 boundary
    pop.sortByFitness();

    ASSERT_EQ(pop.size(), 5u);
    // Rank 0 (3 members) first: the two infinite-crowding boundaries
    // ahead of the interior point, tie broken by canonical key.
    EXPECT_EQ(pop.members()[0].paretoRank, 0u);
    EXPECT_EQ(pop.members()[1].paretoRank, 0u);
    EXPECT_EQ(pop.members()[2].paretoRank, 0u);
    EXPECT_TRUE(std::isinf(pop.members()[0].crowding));
    EXPECT_TRUE(std::isinf(pop.members()[1].crowding));
    EXPECT_EQ(pop.members()[2].edits[0].srcUid, 4u);
    EXPECT_EQ(pop.members()[3].paretoRank, 1u);
    EXPECT_EQ(pop.members()[3].edits[0].srcUid, 1u);
    EXPECT_FALSE(pop.members()[4].fitness.valid);
    // best() is a non-dominated member.
    EXPECT_EQ(pop.best().paretoRank, 0u);
}

// ---- PortfolioFitness ----

TEST(Portfolio, OfOnePassesThroughBitForBit)
{
    const auto mod = toyModule();
    const auto cv = toyVariant(mod);
    ToyFitness toy;
    PortfolioFitness port(toy, {sim::p100()});
    const auto direct = toy.evaluate(cv);
    const auto wrapped = port.evaluate(cv);
    ASSERT_TRUE(direct.valid);
    EXPECT_EQ(wrapped.valid, direct.valid);
    EXPECT_EQ(wrapped.objectives, direct.objectives);
    EXPECT_EQ(wrapped.failReason, direct.failReason);
}

TEST(Portfolio, WorstTakesPerObjectiveMaximum)
{
    const auto mod = toyModule();
    const auto cv = toyVariant(mod);
    StubFitness stub;
    PortfolioFitness port(stub, {sim::p100(), sim::v100()},
                          DeviceAgg::Worst);
    const auto r = port.evaluate(cv);
    ASSERT_TRUE(r.valid);
    ASSERT_EQ(r.objectives.size(), 3u);
    EXPECT_EQ(r.objectives[0], 4.0);  // max(2, 4)
    EXPECT_EQ(r.objectives[1], 10.0); // max(10, 6)
    EXPECT_EQ(r.objectives[2], 3.0);  // max(1, 3)
}

TEST(Portfolio, MeanAveragesPerObjective)
{
    const auto mod = toyModule();
    const auto cv = toyVariant(mod);
    StubFitness stub;
    PortfolioFitness port(stub, {sim::p100(), sim::v100()},
                          DeviceAgg::Mean);
    const auto r = port.evaluate(cv);
    ASSERT_TRUE(r.valid);
    EXPECT_EQ(r.objectives[0], 3.0);
    EXPECT_EQ(r.objectives[1], 8.0);
    EXPECT_EQ(r.objectives[2], 2.0);
}

TEST(Portfolio, AnyDeviceFailureFailsTheVariantTagged)
{
    const auto mod = toyModule();
    const auto cv = toyVariant(mod);
    StubFitness stub(/*failOnV100=*/true);
    PortfolioFitness port(stub, {sim::p100(), sim::v100()});
    const auto r = port.evaluate(cv);
    EXPECT_FALSE(r.valid);
    EXPECT_EQ(r.failReason, "V100: stub says no");
}

TEST(Portfolio, NameEncodesDevicesAndAggregation)
{
    StubFitness stub;
    PortfolioFitness port(stub, {sim::p100(), sim::v100()},
                          DeviceAgg::Mean);
    EXPECT_EQ(port.name(), "stub|portfolio(P100+V100,mean)");
}

// ---- engine-level determinism ----

EvolutionParams
paretoParams(std::uint32_t threads, EvalBackendKind backend)
{
    EvolutionParams params;
    params.populationSize = 10;
    params.generations = 6;
    params.elitism = 2;
    params.seed = 5;
    params.threads = threads;
    params.backend = backend;
    params.selection = SelectionKind::Pareto;
    params.objectives = kTimeSectors;
    return params;
}

void
expectSameTrajectory(const SearchResult& a, const SearchResult& b)
{
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t g = 0; g < a.history.size(); ++g) {
        EXPECT_EQ(a.history[g].bestMs, b.history[g].bestMs);
        EXPECT_EQ(a.history[g].meanMs, b.history[g].meanMs);
        EXPECT_EQ(a.history[g].paretoFrontSize,
                  b.history[g].paretoFrontSize);
        EXPECT_EQ(mut::serializeEdits(a.history[g].bestEdits),
                  mut::serializeEdits(b.history[g].bestEdits));
    }
    ASSERT_EQ(a.paretoFront.size(), b.paretoFront.size());
    for (std::size_t i = 0; i < a.paretoFront.size(); ++i) {
        EXPECT_EQ(mut::serializeEdits(a.paretoFront[i].edits),
                  mut::serializeEdits(b.paretoFront[i].edits));
        EXPECT_EQ(a.paretoFront[i].fitness.objectives,
                  b.paretoFront[i].fitness.objectives);
    }
}

TEST(EnginePareto, DeterministicAcrossThreadsAndBackends)
{
    const auto mod = toyModule();
    ToyFitness toy;
    PortfolioFitness port(toy, {sim::p100(), sim::v100()});

    const auto reference =
        EvolutionEngine(mod, port,
                        paretoParams(1, EvalBackendKind::InProcess))
            .run();
    EXPECT_FALSE(reference.paretoFront.empty());
    for (const auto& ind : reference.paretoFront)
        EXPECT_TRUE(ind.fitness.valid);

    const auto threaded =
        EvolutionEngine(mod, port,
                        paretoParams(4, EvalBackendKind::InProcess))
            .run();
    expectSameTrajectory(reference, threaded);

    const auto isolated =
        EvolutionEngine(mod, port,
                        paretoParams(4, EvalBackendKind::Isolated))
            .run();
    expectSameTrajectory(reference, isolated);
}

TEST(EnginePareto, FrontMembersAreMutuallyNonDominated)
{
    const auto mod = toyModule();
    ToyFitness toy;
    const auto result =
        EvolutionEngine(mod, toy,
                        paretoParams(1, EvalBackendKind::InProcess))
            .run();
    const auto& front = result.paretoFront;
    ASSERT_FALSE(front.empty());
    for (std::size_t i = 0; i < front.size(); ++i)
        for (std::size_t j = 0; j < front.size(); ++j)
            EXPECT_FALSE(dominates(front[i].fitness, front[j].fitness,
                                   kTimeSectors))
                << i << " dominates " << j;
}

TEST(EnginePareto, PortfolioOfOneMatchesPlainRunBitForBit)
{
    // The single-device portfolio passthrough plus the scalar-default
    // objective vector make wrapping a no-op for the trajectory.
    const auto mod = toyModule();
    ToyFitness toy;
    PortfolioFitness port(toy, {sim::p100()});
    EvolutionParams params;
    params.populationSize = 10;
    params.generations = 6;
    params.elitism = 2;
    params.seed = 5;

    const auto plain = EvolutionEngine(mod, toy, params).run();
    const auto wrapped = EvolutionEngine(mod, port, params).run();
    ASSERT_EQ(plain.history.size(), wrapped.history.size());
    for (std::size_t g = 0; g < plain.history.size(); ++g) {
        EXPECT_EQ(plain.history[g].bestMs, wrapped.history[g].bestMs);
        EXPECT_EQ(plain.history[g].meanMs, wrapped.history[g].meanMs);
        EXPECT_EQ(mut::serializeEdits(plain.history[g].bestEdits),
                  mut::serializeEdits(wrapped.history[g].bestEdits));
    }
    EXPECT_EQ(plain.best.fitness.objectives,
              wrapped.best.fitness.objectives);
}

} // namespace
} // namespace gevo::core
