/// SearchTopology: island counts, ring migration schedules, and the
/// params -> topology derivation.

#include "core/topology.h"

#include <gtest/gtest.h>

namespace gevo::core {
namespace {

TEST(Topology, PanmicticHasOneIslandAndNoMigration)
{
    PanmicticTopology t;
    EXPECT_EQ(t.islandCount(), 1u);
    for (std::uint32_t gen = 1; gen <= 50; ++gen)
        EXPECT_TRUE(t.migrationsAfter(gen).empty());
}

TEST(Topology, RingEdgesFormADirectedCycle)
{
    RingTopology t(4, 5);
    EXPECT_EQ(t.islandCount(), 4u);
    EXPECT_TRUE(t.migrationsAfter(1).empty());
    EXPECT_TRUE(t.migrationsAfter(4).empty());
    // Regression: `gen % interval == 0` alone fired after generation 0 —
    // the seed population — one full interval before the documented
    // schedule. The first migration is after generation `interval`.
    EXPECT_TRUE(t.migrationsAfter(0).empty());
    const auto edges = t.migrationsAfter(5);
    ASSERT_EQ(edges.size(), 4u);
    for (std::uint32_t i = 0; i < 4; ++i) {
        EXPECT_EQ(edges[i].from, i);
        EXPECT_EQ(edges[i].to, (i + 1) % 4);
    }
    EXPECT_FALSE(t.migrationsAfter(10).empty());
    EXPECT_TRUE(t.migrationsAfter(11).empty());
}

TEST(Topology, RingIntervalZeroNeverMigrates)
{
    RingTopology t(3, 0);
    for (std::uint32_t gen = 0; gen <= 30; ++gen)
        EXPECT_TRUE(t.migrationsAfter(gen).empty());
}

TEST(Topology, RingIntervalOneFiresEveryGenerationExceptZero)
{
    // interval 1 is the tightest schedule: migration after every evolved
    // generation — but still not after generation 0, which has only the
    // seed population.
    RingTopology t(2, 1);
    EXPECT_TRUE(t.migrationsAfter(0).empty());
    for (std::uint32_t gen = 1; gen <= 10; ++gen)
        EXPECT_EQ(t.migrationsAfter(gen).size(), 2u) << gen;
}

TEST(Topology, SingleIslandRingNeverMigrates)
{
    RingTopology t(1, 1);
    EXPECT_TRUE(t.migrationsAfter(1).empty());
}

TEST(Topology, MakeTopologyDerivesFromParams)
{
    EvolutionParams params;
    params.islands = 1;
    EXPECT_EQ(makeTopology(params)->islandCount(), 1u);
    EXPECT_EQ(makeTopology(params)->describe(), "panmictic");

    params.islands = 6;
    params.migrationInterval = 7;
    const auto ring = makeTopology(params);
    EXPECT_EQ(ring->islandCount(), 6u);
    EXPECT_EQ(ring->migrationsAfter(7).size(), 6u);
    EXPECT_TRUE(ring->migrationsAfter(8).empty());
}

} // namespace
} // namespace gevo::core
