/// SearchTopology: island counts, ring migration schedules, and the
/// params -> topology derivation.

#include "core/topology.h"

#include <gtest/gtest.h>

namespace gevo::core {
namespace {

TEST(Topology, PanmicticHasOneIslandAndNoMigration)
{
    PanmicticTopology t;
    EXPECT_EQ(t.islandCount(), 1u);
    for (std::uint32_t gen = 1; gen <= 50; ++gen)
        EXPECT_TRUE(t.migrationsAfter(gen).empty());
}

TEST(Topology, RingEdgesFormADirectedCycle)
{
    RingTopology t(4, 5);
    EXPECT_EQ(t.islandCount(), 4u);
    EXPECT_TRUE(t.migrationsAfter(1).empty());
    EXPECT_TRUE(t.migrationsAfter(4).empty());
    // Regression: `gen % interval == 0` alone fired after generation 0 —
    // the seed population — one full interval before the documented
    // schedule. The first migration is after generation `interval`.
    EXPECT_TRUE(t.migrationsAfter(0).empty());
    const auto edges = t.migrationsAfter(5);
    ASSERT_EQ(edges.size(), 4u);
    for (std::uint32_t i = 0; i < 4; ++i) {
        EXPECT_EQ(edges[i].from, i);
        EXPECT_EQ(edges[i].to, (i + 1) % 4);
    }
    EXPECT_FALSE(t.migrationsAfter(10).empty());
    EXPECT_TRUE(t.migrationsAfter(11).empty());
}

TEST(Topology, RingIntervalZeroNeverMigrates)
{
    RingTopology t(3, 0);
    for (std::uint32_t gen = 0; gen <= 30; ++gen)
        EXPECT_TRUE(t.migrationsAfter(gen).empty());
}

TEST(Topology, RingIntervalOneFiresEveryGenerationExceptZero)
{
    // interval 1 is the tightest schedule: migration after every evolved
    // generation — but still not after generation 0, which has only the
    // seed population.
    RingTopology t(2, 1);
    EXPECT_TRUE(t.migrationsAfter(0).empty());
    for (std::uint32_t gen = 1; gen <= 10; ++gen)
        EXPECT_EQ(t.migrationsAfter(gen).size(), 2u) << gen;
}

TEST(Topology, SingleIslandRingNeverMigrates)
{
    RingTopology t(1, 1);
    EXPECT_TRUE(t.migrationsAfter(1).empty());
}

TEST(Topology, TorusFactorsIntoTheMostSquareGrid)
{
    // 6 islands -> 2x3; every island emits a right and a down edge.
    TorusTopology t(6, 3);
    EXPECT_EQ(t.islandCount(), 6u);
    EXPECT_TRUE(t.migrationsAfter(0).empty());
    EXPECT_TRUE(t.migrationsAfter(2).empty());
    const auto edges = t.migrationsAfter(3);
    ASSERT_EQ(edges.size(), 12u);
    // Spot-check the wrap-around edges: island 2 (row 0, col 2) wraps
    // right to 0; island 5 (row 1, col 2) wraps down to 2.
    bool wrapRight = false;
    bool wrapDown = false;
    for (const auto& e : edges) {
        if (e.from == 2 && e.to == 0)
            wrapRight = true;
        if (e.from == 5 && e.to == 2)
            wrapDown = true;
        EXPECT_NE(e.from, e.to);
        EXPECT_LT(e.to, 6u);
    }
    EXPECT_TRUE(wrapRight);
    EXPECT_TRUE(wrapDown);
    // Every island participates as a source exactly twice on a 2-D grid.
    std::vector<int> outDegree(6, 0);
    for (const auto& e : edges)
        ++outDegree[e.from];
    for (int d : outDegree)
        EXPECT_EQ(d, 2);
}

TEST(Topology, PrimeIslandCountTorusDegeneratesToRing)
{
    // 5 islands factor as 1x5: no distinct down edge, so the torus is
    // exactly the 5-ring (no duplicate or self edges).
    TorusTopology t(5, 2);
    const auto edges = t.migrationsAfter(2);
    ASSERT_EQ(edges.size(), 5u);
    for (std::uint32_t i = 0; i < 5; ++i) {
        EXPECT_EQ(edges[i].from, i);
        EXPECT_EQ(edges[i].to, (i + 1) % 5);
    }
}

TEST(Topology, StarRoutesThroughTheHub)
{
    StarTopology t(4, 2);
    EXPECT_EQ(t.islandCount(), 4u);
    EXPECT_TRUE(t.migrationsAfter(1).empty());
    const auto edges = t.migrationsAfter(2);
    // 3 spokes in, then 3 broadcasts out; spoke->hub edges must come
    // first so the hub ingests before it broadcasts its (pre-migration)
    // elites.
    ASSERT_EQ(edges.size(), 6u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(edges[i].to, 0u);
        EXPECT_EQ(edges[i].from, i + 1);
    }
    for (std::size_t i = 3; i < 6; ++i) {
        EXPECT_EQ(edges[i].from, 0u);
        EXPECT_EQ(edges[i].to, i - 2);
    }
}

TEST(Topology, SingleIslandTorusAndStarNeverMigrate)
{
    TorusTopology torus(1, 1);
    StarTopology star(1, 1);
    for (std::uint32_t gen = 0; gen <= 10; ++gen) {
        EXPECT_TRUE(torus.migrationsAfter(gen).empty());
        EXPECT_TRUE(star.migrationsAfter(gen).empty());
    }
}

TEST(Topology, MakeTopologySelectsRequestedKind)
{
    EvolutionParams params;
    params.islands = 6;
    params.migrationInterval = 4;

    params.topology = TopologyKind::Torus;
    EXPECT_NE(makeTopology(params)->describe().find("torus"),
              std::string::npos);
    params.topology = TopologyKind::Star;
    EXPECT_NE(makeTopology(params)->describe().find("star"),
              std::string::npos);
    params.topology = TopologyKind::Ring;
    EXPECT_NE(makeTopology(params)->describe().find("ring"),
              std::string::npos);
    // Explicit panmictic with one island is fine...
    params.islands = 1;
    params.topology = TopologyKind::Panmictic;
    EXPECT_EQ(makeTopology(params)->describe(), "panmictic");
}

TEST(TopologyDeathTest, PanmicticWithMultipleIslandsIsFatal)
{
    EvolutionParams params;
    params.islands = 3;
    params.topology = TopologyKind::Panmictic;
    EXPECT_DEATH(makeTopology(params), "panmictic");
}

TEST(Topology, MakeTopologyDerivesFromParams)
{
    EvolutionParams params;
    params.islands = 1;
    EXPECT_EQ(makeTopology(params)->islandCount(), 1u);
    EXPECT_EQ(makeTopology(params)->describe(), "panmictic");

    params.islands = 6;
    params.migrationInterval = 7;
    const auto ring = makeTopology(params);
    EXPECT_EQ(ring->islandCount(), 6u);
    EXPECT_EQ(ring->migrationsAfter(7).size(), 6u);
    EXPECT_TRUE(ring->migrationsAfter(8).empty());
}

} // namespace
} // namespace gevo::core
