#include "core/variant_cache.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "ir/parser.h"
#include "sim/device_config.h"
#include "sim/device_memory.h"
#include "sim/executor.h"
#include "sim/program.h"
#include "support/thread_pool.h"

namespace gevo::core {
namespace {

mut::Edit
operandReplace(std::uint64_t srcUid, std::int8_t slot, std::int64_t imm)
{
    mut::Edit e;
    e.kind = mut::EditKind::OperandReplace;
    e.srcUid = srcUid;
    e.opIndex = slot;
    e.newOperand = ir::Operand::imm(imm);
    return e;
}

mut::Edit
instrCopy(std::uint64_t srcUid, std::uint64_t dstUid, std::uint64_t newUid)
{
    mut::Edit e;
    e.kind = mut::EditKind::InstrCopy;
    e.srcUid = srcUid;
    e.dstUid = dstUid;
    e.newUid = newUid;
    return e;
}

TEST(VariantCacheKey, EqualListsShareAKey)
{
    const std::vector<mut::Edit> a = {operandReplace(3, 0, 7),
                                      instrCopy(4, 5, 99)};
    const std::vector<mut::Edit> b = {operandReplace(3, 0, 7),
                                      instrCopy(4, 5, 99)};
    EXPECT_EQ(VariantCache::keyOf(a), VariantCache::keyOf(b));
    EXPECT_EQ(VariantCache::hashKey(VariantCache::keyOf(a)),
              VariantCache::hashKey(VariantCache::keyOf(b)));
}

TEST(VariantCacheKey, ReorderedListsAreDistinct)
{
    // Edit application is order-sensitive; a reordered list is a different
    // variant and must never collide with the original.
    const mut::Edit e1 = operandReplace(3, 0, 7);
    const mut::Edit e2 = instrCopy(4, 5, 99);
    EXPECT_NE(VariantCache::keyOf({e1, e2}), VariantCache::keyOf({e2, e1}));
}

TEST(VariantCacheKey, EveryFieldIsSignificant)
{
    const auto base = VariantCache::keyOf({operandReplace(3, 0, 7)});
    EXPECT_NE(base, VariantCache::keyOf({operandReplace(4, 0, 7)}));
    EXPECT_NE(base, VariantCache::keyOf({operandReplace(3, 1, 7)}));
    EXPECT_NE(base, VariantCache::keyOf({operandReplace(3, 0, 8)}));
    // Register operand vs equal-valued immediate.
    mut::Edit reg = operandReplace(3, 0, 7);
    reg.newOperand = ir::Operand::reg(7);
    EXPECT_NE(base, VariantCache::keyOf({reg}));
    // newUid is an anchor for later edits, so it is part of the content.
    EXPECT_NE(VariantCache::keyOf({instrCopy(4, 5, 99)}),
              VariantCache::keyOf({instrCopy(4, 5, 100)}));
    // Prefix/extension.
    EXPECT_NE(base, VariantCache::keyOf({}));
    EXPECT_NE(base, VariantCache::keyOf(
                        {operandReplace(3, 0, 7), operandReplace(3, 0, 7)}));
}

TEST(VariantCache, LookupInsertAndStats)
{
    VariantCache cache(4);
    const auto key = VariantCache::keyOf({operandReplace(1, 0, 2)});

    FitnessResult out;
    EXPECT_FALSE(cache.lookup(key, &out));
    cache.insert(key, FitnessResult::pass(1.5));
    ASSERT_TRUE(cache.lookup(key, &out));
    EXPECT_TRUE(out.valid);
    EXPECT_DOUBLE_EQ(out.ms(), 1.5);

    // Re-insertion is a no-op (results are immutable).
    cache.insert(key, FitnessResult::pass(9.0));
    ASSERT_TRUE(cache.lookup(key, &out));
    EXPECT_DOUBLE_EQ(out.ms(), 1.5);

    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_NEAR(stats.hitRate(), 2.0 / 3.0, 1e-12);

    cache.clear();
    EXPECT_FALSE(cache.lookup(key, &out));
    EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(VariantCache, ConcurrentInsertLookup)
{
    VariantCache cache(8);
    ThreadPool pool(4);
    constexpr int kKeys = 64;
    constexpr int kRounds = 50;
    pool.parallelFor(4 * kKeys, [&](std::size_t task) {
        const auto k = static_cast<std::uint64_t>(task % kKeys);
        const auto key =
            VariantCache::keyOf({operandReplace(k, 0, 1)});
        for (int r = 0; r < kRounds; ++r) {
            cache.insert(key, FitnessResult::pass(static_cast<double>(k)));
            FitnessResult out;
            ASSERT_TRUE(cache.lookup(key, &out));
            ASSERT_DOUBLE_EQ(out.ms(), static_cast<double>(k));
        }
    });
    EXPECT_EQ(cache.stats().entries, static_cast<std::uint64_t>(kKeys));
}

// ---- program-content keys (cache level 2) ----

TEST(ProgramContentKey, LocMetadataIsInsignificant)
{
    // Identical code, different source-location annotations: same key —
    // locs affect profiling attribution only, never scoring.
    const char* kWithLocs = R"(
kernel @k params 1 regs 8 shared 0 local 0 {
entry:
    r1 = tid @"a.cu:1"
    r2 = mul.i32 r1, 2 @"a.cu:2"
    ret
}
)";
    const char* kOtherLocs = R"(
kernel @k params 1 regs 8 shared 0 local 0 {
entry:
    r1 = tid @"b.cu:9"
    r2 = mul.i32 r1, 2
    ret
}
)";
    auto a = ir::parseModule(kWithLocs);
    auto b = ir::parseModule(kOtherLocs);
    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;
    EXPECT_EQ(sim::ProgramSet::decodeModule(a.module).contentKey(),
              sim::ProgramSet::decodeModule(b.module).contentKey());
}

TEST(ProgramContentKey, CodeChangesAreSignificant)
{
    const char* kA = R"(
kernel @k params 1 regs 8 shared 0 local 0 {
entry:
    r1 = tid
    r2 = mul.i32 r1, 2
    ret
}
)";
    const char* kB = R"(
kernel @k params 1 regs 8 shared 0 local 0 {
entry:
    r1 = tid
    r2 = mul.i32 r1, 3
    ret
}
)";
    auto a = ir::parseModule(kA);
    auto b = ir::parseModule(kB);
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_NE(sim::ProgramSet::decodeModule(a.module).contentKey(),
              sim::ProgramSet::decodeModule(b.module).contentKey());
}

// ---- determinism regression: the cache must be trajectory-neutral ----

constexpr const char* kToyKernel = R"(
kernel @toy params 1 regs 24 shared 512 local 0 {
entry:
    r1 = tid
    r2 = mov 0
    br memset
memset:
    r3 = mul.i32 r2, 4
    r4 = cvt.i32.i64 r3
    st.i32.shared r4, 0
    r2 = add.i32 r2, 1
    r5 = cmp.lt.i32 r2, 96
    brc r5, memset, work
work:
    r6 = mul.i32 r1, 2
    r7 = cvt.i32.i64 r1
    r8 = mul.i64 r7, 4
    r9 = add.i64 r0, r8
    st.i32.global r9, r6
    ret
}
)";

class ToyFitness : public FitnessFunction {
  public:
    FitnessResult
    evaluate(const CompiledVariant& variant) const override
    {
        const auto* prog = variant.programs.find("toy");
        if (prog == nullptr)
            return FitnessResult::fail("kernel missing");
        sim::DeviceMemory mem(1 << 16);
        const auto out = mem.alloc(64 * 4);
        const auto res = sim::launchKernel(
            sim::p100(), mem, *prog, {1, 64},
            {static_cast<std::uint64_t>(out)});
        if (!res.ok())
            return FitnessResult::fail(res.fault.detail);
        for (int t = 0; t < 64; ++t) {
            if (mem.read<std::int32_t>(out + t * 4) != t * 2)
                return FitnessResult::fail("wrong output");
        }
        return FitnessResult::pass(res.stats.ms);
    }

    std::string name() const override { return "toy"; }
};

SearchResult
runToySearch(const ir::Module& mod, bool useCache, std::uint32_t threads)
{
    ToyFitness fitness;
    EvolutionParams params;
    params.populationSize = 14;
    params.generations = 12;
    params.elitism = 2;
    params.seed = 21;
    params.useCache = useCache;
    params.threads = threads;
    return EvolutionEngine(mod, fitness, params).run();
}

void
expectSameTrajectory(const SearchResult& a, const SearchResult& b)
{
    EXPECT_EQ(mut::serializeEdits(a.best.edits),
              mut::serializeEdits(b.best.edits));
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t g = 0; g < a.history.size(); ++g) {
        EXPECT_DOUBLE_EQ(a.history[g].bestMs, b.history[g].bestMs);
        EXPECT_DOUBLE_EQ(a.history[g].meanMs, b.history[g].meanMs);
        EXPECT_EQ(a.history[g].validCount, b.history[g].validCount);
        EXPECT_EQ(mut::serializeEdits(a.history[g].bestEdits),
                  mut::serializeEdits(b.history[g].bestEdits));
    }
}

TEST(VariantCacheDeterminism, CacheOnEqualsCacheOff)
{
    auto parsed = ir::parseModule(kToyKernel);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const auto cached = runToySearch(parsed.module, true, 1);
    const auto uncached = runToySearch(parsed.module, false, 1);
    expectSameTrajectory(cached, uncached);
    // The cached run must actually have exercised the cache.
    EXPECT_GT(cached.cacheSummary.served, 0u);
    EXPECT_GT(cached.cacheSummary.entries, 0u);
    EXPECT_LT(cached.cacheSummary.evaluated,
              uncached.cacheSummary.evaluated);
}

TEST(VariantCacheDeterminism, SingleThreadEqualsMultiThread)
{
    auto parsed = ir::parseModule(kToyKernel);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const auto one = runToySearch(parsed.module, true, 1);
    const auto four = runToySearch(parsed.module, true, 4);
    expectSameTrajectory(one, four);

    const auto oneOff = runToySearch(parsed.module, false, 1);
    const auto fourOff = runToySearch(parsed.module, false, 4);
    expectSameTrajectory(oneOff, fourOff);
}

} // namespace
} // namespace gevo::core
