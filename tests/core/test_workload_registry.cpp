/// Workload registry: lookup semantics, knob precedence, strict
/// `--workloads` list resolution, and a round-trip that evolves every
/// registered workload for two tiny generations — plus a determinism
/// matrix (threads 1/4, cache on/off, two islands) over the three
/// non-paper workload families.

#include "core/workload.h"

#include <gtest/gtest.h>

#include <optional>

#include "apps/registry.h"
#include "core/engine.h"
#include "mutation/edit.h"

namespace gevo::core {
namespace {

/// Tiny build scale for every registered workload: the smallest grid the
/// SIMCoV block size allows, a couple of alignment pairs, and scaled-down
/// stencil/reduce/bfs instances.
const std::map<std::string, std::string> kTinyKnobs = {
    {"pairs", "2"},  {"grid", "16"},   {"steps", "2"}, {"elems", "1024"},
    {"inputs", "1"}, {"nodes", "128"}, {"degree", "4"},
};

class WorkloadRegistryTest : public ::testing::Test {
  protected:
    void SetUp() override { apps::registerBuiltinWorkloads(); }
};

TEST_F(WorkloadRegistryTest, BuiltinsAreRegisteredOnce)
{
    auto& registry = WorkloadRegistry::instance();
    // Registration is idempotent even when called again.
    apps::registerBuiltinWorkloads();
    const auto names = registry.names();
    // The CI island smoke enumerates this set via --list-workloads and
    // asserts at least five entries; keep the floor in lockstep.
    ASSERT_GE(names.size(), 5u);
    ASSERT_EQ(names.size(), 6u);
    EXPECT_EQ(names[0], "adept-v0");
    EXPECT_EQ(names[1], "adept-v1");
    EXPECT_EQ(names[2], "simcov");
    EXPECT_EQ(names[3], "stencil");
    EXPECT_EQ(names[4], "reduce");
    EXPECT_EQ(names[5], "bfs");
    EXPECT_NE(registry.find("simcov"), nullptr);
    EXPECT_EQ(registry.find("nope"), nullptr);
}

TEST_F(WorkloadRegistryTest, UnknownWorkloadIsFatal)
{
    EXPECT_EXIT(WorkloadRegistry::instance().get("nope"),
                ::testing::ExitedWithCode(1), "unknown workload 'nope'");
}

TEST_F(WorkloadRegistryTest, DuplicateRegistrationIsFatal)
{
    EXPECT_EXIT(
        {
            Workload w;
            w.name = "simcov";
            w.make = [](const WorkloadConfig&) {
                return std::unique_ptr<WorkloadInstance>();
            };
            WorkloadRegistry::instance().add(std::move(w));
        },
        ::testing::ExitedWithCode(1), "registered twice");
}

TEST_F(WorkloadRegistryTest, ResolveListAcceptsKnownNamesAndTrims)
{
    const auto names = WorkloadRegistry::instance().resolveList(
        "adept-v0, simcov ,bfs");
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "adept-v0");
    EXPECT_EQ(names[1], "simcov");
    EXPECT_EQ(names[2], "bfs");
}

/// Regression for the silent-skip class of bug: a bench asked to cover a
/// workload list must die loudly — with the registered set printed — on
/// a typo, a stray comma, or an empty list, never run a subset.
TEST_F(WorkloadRegistryTest, ResolveListRejectsUnknownEmptyAndTrailing)
{
    auto& registry = WorkloadRegistry::instance();
    EXPECT_EXIT(registry.resolveList("adept-v0,typo"),
                ::testing::ExitedWithCode(1),
                "unknown workload 'typo' \\(registered: adept-v0, "
                "adept-v1, simcov, stencil, reduce, bfs\\)");
    EXPECT_EXIT(registry.resolveList("adept-v0,"),
                ::testing::ExitedWithCode(1), "empty workload name");
    EXPECT_EXIT(registry.resolveList(""), ::testing::ExitedWithCode(1),
                "empty workload name");
    EXPECT_EXIT(registry.resolveList("adept-v0,,simcov"),
                ::testing::ExitedWithCode(1), "empty workload name");
}

TEST_F(WorkloadRegistryTest, KnobPrecedenceIsFlagThenDefaultThenFallback)
{
    WorkloadConfig config;
    EXPECT_EQ(config.knobInt("pairs", 9), 9);
    config.defaults["pairs"] = "5";
    EXPECT_EQ(config.knobInt("pairs", 9), 5);

    std::vector<std::string> storage = {"prog", "--pairs=3"};
    std::vector<char*> argv;
    for (auto& s : storage)
        argv.push_back(s.data());
    const Flags flags(static_cast<int>(argv.size()), argv.data());
    config.flags = &flags;
    EXPECT_EQ(config.knobInt("pairs", 9), 3);
}

/// Every registered workload must build at tiny scale and survive a
/// 2-generation search through the shared engine — the registry is only
/// useful if its entries are uniformly drivable. Also checks the
/// golden-edit ceiling and its held-out validation for each.
TEST_F(WorkloadRegistryTest, EveryWorkloadEvolvesTwoTinyGenerations)
{
    auto& registry = WorkloadRegistry::instance();
    ASSERT_GE(registry.size(), 5u);
    for (const auto& name : registry.names()) {
        const auto& workload = registry.get(name);
        WorkloadConfig config;
        config.defaults = kTinyKnobs;
        const auto instance = workload.make(config);
        ASSERT_NE(instance, nullptr) << name;
        EXPECT_GT(instance->module().numFunctions(), 0u) << name;

        EvolutionParams params = workload.searchDefaults;
        params.populationSize = 6;
        params.generations = 2;
        params.elitism = 1;
        params.seed = 19;
        EvolutionEngine engine(instance->module(), instance->fitness(),
                               params);
        const auto result = engine.run();
        EXPECT_GT(result.baselineMs, 0.0) << name;
        EXPECT_TRUE(result.best.fitness.valid) << name;
        ASSERT_EQ(result.history.size(), 2u) << name;
        EXPECT_GT(result.history.back().evaluations, 0u) << name;

        // The golden-edit ceiling (when present) must compile, pass and
        // beat the baseline — it is the paper's known-good configuration.
        const auto golden = instance->goldenEdits();
        if (!golden.empty()) {
            const auto ceiling = evaluateVariant(instance->module(), golden,
                                                 instance->fitness());
            EXPECT_TRUE(ceiling.valid) << name << ": "
                                       << ceiling.failReason;
            EXPECT_LT(ceiling.ms(), result.baselineMs) << name;
            // The new families' planted edits are dominated-guard folds
            // and duplicate-chain reroutes: correct at every scale, so
            // they must also survive held-out validation. (SIMCoV's
            // golden set deliberately fails it — the Sec VI-D segfault.)
            if (name == "stencil" || name == "reduce" || name == "bfs") {
                EXPECT_EQ(instance->validateBest(golden), "") << name;
            }
        }
    }
}

/// The acceptance bar for every new workload family: a 2-generation
/// two-island search lands on the identical best edit list no matter the
/// evaluation thread count or cache mode. (ADEPT and SIMCoV have the
/// same property asserted at larger scale in core/test_island and
/// sim/test_trace_interp.)
TEST_F(WorkloadRegistryTest, NewFamiliesSearchDeterministically)
{
    auto& registry = WorkloadRegistry::instance();
    for (const auto& name : {"stencil", "reduce", "bfs"}) {
        const auto& workload = registry.get(name);
        WorkloadConfig config;
        config.defaults = kTinyKnobs;
        const auto instance = workload.make(config);

        std::optional<std::string> reference;
        for (const std::uint32_t threads : {1u, 4u}) {
            for (const bool useCache : {true, false}) {
                EvolutionParams params = workload.searchDefaults;
                params.populationSize = 6;
                params.generations = 2;
                params.elitism = 1;
                params.seed = 23;
                params.islands = 2;
                params.migrationInterval = 1;
                params.migrationCount = 1;
                params.threads = threads;
                params.useCache = useCache;
                EvolutionEngine engine(instance->module(),
                                       instance->fitness(), params);
                const auto result = engine.run();
                const auto key = mut::serializeEdits(result.best.edits);
                if (!reference)
                    reference = key;
                EXPECT_EQ(key, *reference)
                    << name << " threads=" << threads
                    << " cache=" << useCache;
            }
        }
    }
}

} // namespace
} // namespace gevo::core
