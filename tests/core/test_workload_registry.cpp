/// Workload registry: lookup semantics, knob precedence, and a round-trip
/// that evolves every registered workload for two tiny generations.

#include "core/workload.h"

#include <gtest/gtest.h>

#include "apps/registry.h"
#include "core/engine.h"

namespace gevo::core {
namespace {

class WorkloadRegistryTest : public ::testing::Test {
  protected:
    void SetUp() override { apps::registerBuiltinWorkloads(); }
};

TEST_F(WorkloadRegistryTest, BuiltinsAreRegisteredOnce)
{
    auto& registry = WorkloadRegistry::instance();
    // Registration is idempotent even when called again.
    apps::registerBuiltinWorkloads();
    const auto names = registry.names();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "adept-v0");
    EXPECT_EQ(names[1], "adept-v1");
    EXPECT_EQ(names[2], "simcov");
    EXPECT_NE(registry.find("simcov"), nullptr);
    EXPECT_EQ(registry.find("nope"), nullptr);
}

TEST_F(WorkloadRegistryTest, UnknownWorkloadIsFatal)
{
    EXPECT_EXIT(WorkloadRegistry::instance().get("nope"),
                ::testing::ExitedWithCode(1), "unknown workload 'nope'");
}

TEST_F(WorkloadRegistryTest, DuplicateRegistrationIsFatal)
{
    EXPECT_EXIT(
        {
            Workload w;
            w.name = "simcov";
            w.make = [](const WorkloadConfig&) {
                return std::unique_ptr<WorkloadInstance>();
            };
            WorkloadRegistry::instance().add(std::move(w));
        },
        ::testing::ExitedWithCode(1), "registered twice");
}

TEST_F(WorkloadRegistryTest, KnobPrecedenceIsFlagThenDefaultThenFallback)
{
    WorkloadConfig config;
    EXPECT_EQ(config.knobInt("pairs", 9), 9);
    config.defaults["pairs"] = "5";
    EXPECT_EQ(config.knobInt("pairs", 9), 5);

    std::vector<std::string> storage = {"prog", "--pairs=3"};
    std::vector<char*> argv;
    for (auto& s : storage)
        argv.push_back(s.data());
    const Flags flags(static_cast<int>(argv.size()), argv.data());
    config.flags = &flags;
    EXPECT_EQ(config.knobInt("pairs", 9), 3);
}

/// Every registered workload must build at tiny scale and survive a
/// 2-generation search through the shared engine — the registry is only
/// useful if its entries are uniformly drivable.
TEST_F(WorkloadRegistryTest, EveryWorkloadEvolvesTwoTinyGenerations)
{
    auto& registry = WorkloadRegistry::instance();
    for (const auto& name : registry.names()) {
        const auto& workload = registry.get(name);
        WorkloadConfig config;
        // Tiny scale: the smallest grid the SIMCoV block size allows and
        // a couple of alignment pairs.
        config.defaults = {{"pairs", "2"}, {"grid", "16"}, {"steps", "2"}};
        const auto instance = workload.make(config);
        ASSERT_NE(instance, nullptr) << name;
        EXPECT_GT(instance->module().numFunctions(), 0u) << name;

        EvolutionParams params = workload.searchDefaults;
        params.populationSize = 6;
        params.generations = 2;
        params.elitism = 1;
        params.seed = 19;
        EvolutionEngine engine(instance->module(), instance->fitness(),
                               params);
        const auto result = engine.run();
        EXPECT_GT(result.baselineMs, 0.0) << name;
        EXPECT_TRUE(result.best.fitness.valid) << name;
        ASSERT_EQ(result.history.size(), 2u) << name;
        EXPECT_GT(result.history.back().evaluations, 0u) << name;

        // The golden-edit ceiling (when present) must compile and pass —
        // it is the paper's known-good configuration.
        const auto golden = instance->goldenEdits();
        if (!golden.empty()) {
            const auto ceiling = evaluateVariant(instance->module(), golden,
                                                 instance->fitness());
            EXPECT_TRUE(ceiling.valid) << name << ": "
                                       << ceiling.failReason;
            EXPECT_LT(ceiling.ms, result.baselineMs) << name;
        }
    }
}

} // namespace
} // namespace gevo::core
