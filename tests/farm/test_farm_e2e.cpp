/// Loopback farm end-to-end: real forked worker daemons on Unix-domain
/// sockets serving a real EvolutionEngine search through the remote
/// backend. The headline guarantees under test:
///
///   - fault-free remote trajectory == in-process trajectory, exactly;
///   - SIGKILLing a worker (daemon + its session children) mid-run is
///     absorbed by redispatch with zero trajectory perturbation;
///   - losing every worker degrades to local evaluation, the search
///     still finishes, and the trajectory is still identical;
///   - injected farm faults (disconnect / delay / truncate / garbage)
///     settle as the documented deterministic penalties and counters.

#include "farm/server.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "core/engine.h"
#include "core/portfolio.h"
#include "ir/parser.h"
#include "mutation/edit.h"
#include "sim/device_config.h"
#include "sim/device_memory.h"
#include "sim/executor.h"
#include "sim/program.h"
#include "support/strings.h"

namespace gevo::core {
namespace {

/// Same toy optimization target as test_eval_backend.cpp: a pointless
/// scratch-zeroing loop dominates the runtime.
constexpr const char* kToyKernel = R"(
kernel @toy params 1 regs 24 shared 512 local 0 {
entry:
    r1 = tid
    r2 = mov 0
    br memset
memset:
    r3 = mul.i32 r2, 4
    r4 = cvt.i32.i64 r3
    st.i32.shared r4, 0
    r2 = add.i32 r2, 1
    r5 = cmp.lt.i32 r2, 96
    brc r5, memset, work
work:
    r6 = mul.i32 r1, 2
    r7 = cvt.i32.i64 r1
    r8 = mul.i64 r7, 4
    r9 = add.i64 r0, r8
    st.i32.global r9, r6
    ret
}
)";

class ToyFitness : public FitnessFunction {
  public:
    FitnessResult
    evaluate(const CompiledVariant& variant) const override
    {
        return evaluateOn(variant, sim::p100());
    }

    FitnessResult
    evaluateOn(const CompiledVariant& variant,
               const sim::DeviceConfig& dev) const override
    {
        const auto* prog = variant.programs.find("toy");
        if (prog == nullptr)
            return FitnessResult::fail("kernel missing");
        sim::DeviceMemory mem(1 << 16);
        const auto out = mem.alloc(64 * 4);
        const auto res = sim::launchKernel(
            dev, mem, *prog, {1, 64}, {static_cast<std::uint64_t>(out)});
        if (!res.ok())
            return FitnessResult::fail(res.fault.detail);
        for (int t = 0; t < 64; ++t) {
            if (mem.read<std::int32_t>(out + t * 4) != t * 2)
                return FitnessResult::fail("wrong output");
        }
        return FitnessResult::pass(res.stats.ms, res.stats);
    }

    std::string name() const override { return "toy"; }
};

ir::Module
toyModule()
{
    auto res = ir::parseModule(kToyKernel);
    EXPECT_TRUE(res.ok) << res.error;
    return std::move(res.module);
}

EvolutionParams
smallParams()
{
    EvolutionParams params;
    params.populationSize = 10;
    params.generations = 5;
    params.elitism = 2;
    params.seed = 7;
    params.threads = 2;
    return params;
}

/// Scoped GEVO_FAULT_INJECT setting. Farm faults fire in the worker
/// sessions, which inherit the environment from the daemon fork — so
/// this must be in effect *before* the daemons are forked.
class ScopedFaultInject {
  public:
    explicit ScopedFaultInject(const char* spec)
    {
        ::setenv("GEVO_FAULT_INJECT", spec, 1);
    }
    ~ScopedFaultInject() { ::unsetenv("GEVO_FAULT_INJECT"); }
};

void
expectSameTrajectory(const SearchResult& a, const SearchResult& b)
{
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t g = 0; g < a.history.size(); ++g) {
        const GenerationLog& la = a.history[g];
        const GenerationLog& lb = b.history[g];
        EXPECT_EQ(la.generation, lb.generation);
        EXPECT_EQ(la.bestMs, lb.bestMs) << "gen " << la.generation;
        EXPECT_EQ(la.meanMs, lb.meanMs) << "gen " << la.generation;
        EXPECT_EQ(la.validCount, lb.validCount) << "gen " << la.generation;
        EXPECT_EQ(la.evaluations, lb.evaluations)
            << "gen " << la.generation;
        EXPECT_EQ(la.islandBestMs, lb.islandBestMs)
            << "gen " << la.generation;
        EXPECT_EQ(mut::serializeEdits(la.bestEdits),
                  mut::serializeEdits(lb.bestEdits))
            << "gen " << la.generation;
    }
    EXPECT_EQ(mut::serializeEdits(a.best.edits),
              mut::serializeEdits(b.best.edits));
    EXPECT_EQ(a.best.fitness.ms(), b.best.fitness.ms());
}

/// One forked worker daemon (plus the session children it forks, all in
/// its own process group) serving the toy workload on a Unix socket.
class ToyWorker {
  public:
    ToyWorker(const ir::Module& mod, const FitnessFunction& fitness)
    {
        static int counter = 0;
        const std::string tag =
            strformat("/tmp/gevo_farm_e2e_%d_%d", ::getpid(), counter++);
        socketPath_ = tag + ".sock";
        readyPath_ = tag + ".ready";
        pid_ = ::fork();
        EXPECT_NE(pid_, -1);
        if (pid_ == -1)
            return;
        if (pid_ == 0) {
            // Own process group: SIGKILLing it takes the session
            // children down with the daemon, like killing a remote box.
            ::setpgid(0, 0);
            farm::ServerOptions opts;
            opts.listenSpec = "unix:" + socketPath_;
            opts.readyFile = readyPath_;
            opts.banner = "toy e2e worker";
            ::_Exit(farm::runWorkerServer(mod, fitness, opts));
        }
        ::setpgid(pid_, pid_); // Parent side of the same race.
        for (int i = 0; i < 750 && ::access(readyPath_.c_str(), F_OK) != 0;
             ++i)
            ::usleep(20 * 1000);
        EXPECT_EQ(::access(readyPath_.c_str(), F_OK), 0)
            << "worker daemon never came up";
    }

    ~ToyWorker() { kill(); }

    /// SIGKILL the daemon and every session child — no goodbye frames,
    /// exactly like pulling a farm machine's plug.
    void
    kill()
    {
        if (pid_ == -1)
            return;
        ::kill(-pid_, SIGKILL);
        ::waitpid(pid_, nullptr, 0);
        // Session children were reparented to init; wait until the whole
        // process group is gone so their sockets are really closed —
        // otherwise the client's next dispatch can land in a dying
        // session's buffer and turn a clean connection-refused into a
        // raced half-delivery.
        for (int i = 0; i < 750 && ::kill(-pid_, 0) == 0; ++i)
            ::usleep(2 * 1000);
        pid_ = -1;
        ::unlink(socketPath_.c_str());
        ::unlink(readyPath_.c_str());
    }

    std::string spec() const { return "unix:" + socketPath_; }

  private:
    pid_t pid_ = -1;
    std::string socketPath_;
    std::string readyPath_;
};

std::string
workerList(const std::vector<ToyWorker*>& workers)
{
    std::string out;
    for (const auto* w : workers) {
        if (!out.empty())
            out += ',';
        out += w->spec();
    }
    return out;
}

struct FailureTally {
    std::size_t crashes = 0;
    std::size_t timeouts = 0;
    std::size_t protocol = 0;
};

FailureTally
tally(const SearchResult& r)
{
    FailureTally t;
    for (const auto& log : r.history) {
        t.crashes += log.workerCrashes;
        t.timeouts += log.workerTimeouts;
        t.protocol += log.protocolErrors;
    }
    return t;
}

TEST(FarmE2E, RemoteMatchesInProcessTrajectory)
{
    const auto mod = toyModule();
    ToyFitness fitness;
    ToyWorker w0(mod, fitness), w1(mod, fitness);
    for (const bool useCache : {true, false}) {
        auto params = smallParams();
        params.useCache = useCache;
        params.backend = EvalBackendKind::InProcess;
        const auto inProcess =
            EvolutionEngine(mod, fitness, params).run();
        params.backend = EvalBackendKind::Remote;
        params.workers = workerList({&w0, &w1});
        params.evalTimeoutMs = 10000;
        const auto remote = EvolutionEngine(mod, fitness, params).run();
        expectSameTrajectory(inProcess, remote);
        EXPECT_EQ(remote.evalFailures, 0u);
        EXPECT_EQ(remote.quarantined, 0u);
    }
}

TEST(FarmE2E, ParetoPortfolioRemoteMatchesInProcess)
{
    // Multi-objective selection over a device portfolio, served by real
    // remote workers: the v2 wire format must carry the full objective
    // vector with exact bits, or the Pareto ordering drifts.
    const auto mod = toyModule();
    ToyFitness toy;
    PortfolioFitness fitness(toy, {sim::p100(), sim::v100()});
    ToyWorker w0(mod, fitness), w1(mod, fitness);
    auto params = smallParams();
    params.selection = SelectionKind::Pareto;
    params.objectives = {Objective::Time, Objective::Sectors};
    params.backend = EvalBackendKind::InProcess;
    const auto inProcess = EvolutionEngine(mod, fitness, params).run();
    EXPECT_FALSE(inProcess.paretoFront.empty());

    params.backend = EvalBackendKind::Remote;
    params.workers = workerList({&w0, &w1});
    params.evalTimeoutMs = 10000;
    const auto remote = EvolutionEngine(mod, fitness, params).run();
    expectSameTrajectory(inProcess, remote);
    ASSERT_EQ(remote.paretoFront.size(), inProcess.paretoFront.size());
    for (std::size_t i = 0; i < remote.paretoFront.size(); ++i) {
        EXPECT_EQ(mut::serializeEdits(remote.paretoFront[i].edits),
                  mut::serializeEdits(inProcess.paretoFront[i].edits));
        EXPECT_EQ(remote.paretoFront[i].fitness.objectives,
                  inProcess.paretoFront[i].fitness.objectives);
    }
    EXPECT_EQ(remote.evalFailures, 0u);
}

TEST(FarmE2E, WorkerKilledMidRunIsAbsorbedByRedispatch)
{
    const auto mod = toyModule();
    ToyFitness fitness;
    auto params = smallParams();
    params.backend = EvalBackendKind::InProcess;
    const auto inProcess = EvolutionEngine(mod, fitness, params).run();

    ToyWorker w0(mod, fitness), w1(mod, fitness);
    params.backend = EvalBackendKind::Remote;
    params.workers = workerList({&w0, &w1});
    params.evalTimeoutMs = 10000;
    const auto remote =
        EvolutionEngine(mod, fitness, params)
            .run([&](const GenerationLog& log, const SearchResult&) {
                if (log.generation == 2)
                    w1.kill();
            });
    expectSameTrajectory(inProcess, remote);
    EXPECT_EQ(remote.evalFailures, 0u);
    EXPECT_EQ(remote.quarantined, 0u);
}

TEST(FarmE2E, AllWorkersGoneDegradesToLocalEvaluation)
{
    const auto mod = toyModule();
    ToyFitness fitness;
    auto params = smallParams();
    params.backend = EvalBackendKind::InProcess;
    const auto inProcess = EvolutionEngine(mod, fitness, params).run();

    ToyWorker w0(mod, fitness);
    params.backend = EvalBackendKind::Remote;
    params.workers = w0.spec();
    params.evalTimeoutMs = 10000;
    // The sole worker dies between generations; the client exhausts its
    // redial budget, then finishes the remaining generations in-process
    // — warn, don't abort, and don't perturb the trajectory.
    const auto remote =
        EvolutionEngine(mod, fitness, params)
            .run([&](const GenerationLog& log, const SearchResult&) {
                if (log.generation == 2)
                    w0.kill();
            });
    expectSameTrajectory(inProcess, remote);
    EXPECT_EQ(remote.evalFailures, 0u);
    EXPECT_EQ(remote.quarantined, 0u);
}

/// Injected farm faults strike the same evaluation on every redispatch
/// (the fault schedule is keyed on the request's sequence number, which
/// redispatch preserves), so two strikes settle it as exactly one
/// deterministic penalty of the documented kind.
struct FaultCase {
    const char* spec;
    std::size_t FailureTally::* counter;
    /// Per-evaluation deadline. Generous enough that a legitimate toy
    /// evaluation never trips it even on a loaded CI machine — only the
    /// injected fault can. The delay case keeps the smallest budget that
    /// is still safe, because the injected sleep (and so the test's wall
    /// clock) scales with it.
    std::uint32_t timeoutMs;
};

class FarmFaults : public ::testing::TestWithParam<FaultCase> {};

TEST_P(FarmFaults, IsPenalizedOnceAndSearchCompletes)
{
    const auto& fault = GetParam();
    const auto mod = toyModule();
    ToyFitness fitness;
    ScopedFaultInject inject(fault.spec); // Before the daemon forks.
    ToyWorker w0(mod, fitness), w1(mod, fitness);
    auto params = smallParams();
    params.useCache = false; // Every individual dispatched, every gen.
    params.backend = EvalBackendKind::Remote;
    params.workers = workerList({&w0, &w1});
    params.evalTimeoutMs = fault.timeoutMs;
    const auto result = EvolutionEngine(mod, fitness, params).run();

    ASSERT_EQ(result.history.size(), params.generations);
    EXPECT_EQ(result.evalFailures, 1u);
    EXPECT_EQ(result.quarantined, 1u);
    const auto t = tally(result);
    EXPECT_EQ(t.*fault.counter, 1u) << fault.spec;
    EXPECT_EQ(t.crashes + t.timeouts + t.protocol, 1u) << fault.spec;
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, FarmFaults,
    ::testing::Values(
        // Connection loss folds into the crash counter.
        FaultCase{"disconnect@7", &FailureTally::crashes, 10000},
        // A reply truncated mid-frame is indistinguishable from death.
        FaultCase{"truncate@7", &FailureTally::crashes, 10000},
        // A blown per-evaluation deadline is a timeout.
        FaultCase{"delay@7", &FailureTally::timeouts, 5000},
        // An undecodable byte stream is a protocol error.
        FaultCase{"garbage@7", &FailureTally::protocol, 10000}),
    [](const auto& info) {
        std::string name = info.param.spec;
        return name.substr(0, name.find('@'));
    });

} // namespace
} // namespace gevo::core
