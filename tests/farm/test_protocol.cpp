/// Farm wire protocol: frame reassembly under adversarial input
/// (truncation, oversize, bit flips, arbitrary chunk boundaries),
/// message codec round-trips including exact float bits, and the
/// trajectory-scope handshake — a worker serving a different baseline
/// must reject the session, and a peer dying mid-frame must end the
/// session without taking the process with it.

#include "farm/protocol.h"

#include <gtest/gtest.h>

#include <bit>
#include <csignal>
#include <cstring>
#include <limits>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "core/fitness.h"
#include "farm/session.h"
#include "ir/parser.h"
#include "support/io.h"

namespace gevo::farm {
namespace {

/// The session writes into sockets the test side may have closed; that
/// must surface as a write error, not a SIGPIPE death of the test
/// binary (the daemons ignore it process-wide — satellite of the same
/// requirement).
struct IgnoreSigpipe {
    IgnoreSigpipe() { std::signal(SIGPIPE, SIG_IGN); }
} const gIgnoreSigpipe;

std::string
frame(std::string_view payload)
{
    std::string out;
    appendFrame(&out, payload);
    return out;
}

// ---- framing ----

TEST(FarmFraming, RoundTripAndByteAtATimeReassembly)
{
    const std::string payloads[] = {"", "x", "hello farm",
                                    std::string(1000, '\xab')};
    std::string wire;
    for (const auto& p : payloads)
        appendFrame(&wire, p);

    // Whole-buffer push.
    {
        FrameReader reader;
        reader.push(wire.data(), wire.size());
        std::string got;
        for (const auto& p : payloads) {
            ASSERT_EQ(reader.next(&got), FrameReader::Status::Frame);
            EXPECT_EQ(got, p);
        }
        EXPECT_EQ(reader.next(&got), FrameReader::Status::NeedMore);
        EXPECT_EQ(reader.pending(), 0u);
    }

    // One byte at a time: TCP respects no frame boundaries, the reader
    // must reassemble from any chunking.
    {
        FrameReader reader;
        std::size_t produced = 0;
        std::string got;
        for (char c : wire) {
            reader.push(&c, 1);
            while (reader.next(&got) == FrameReader::Status::Frame) {
                ASSERT_LT(produced, std::size(payloads));
                EXPECT_EQ(got, payloads[produced]);
                ++produced;
            }
        }
        EXPECT_EQ(produced, std::size(payloads));
    }
}

TEST(FarmFraming, TruncatedTailNeedsMoreAndLeavesResidue)
{
    const std::string wire = frame("half a frame");
    for (std::size_t cut = 1; cut < wire.size(); ++cut) {
        FrameReader reader;
        reader.push(wire.data(), wire.size() - cut);
        std::string got;
        EXPECT_EQ(reader.next(&got), FrameReader::Status::NeedMore);
        // The residue is how EOF mid-frame is detected.
        EXPECT_EQ(reader.pending(), wire.size() - cut);
    }
}

TEST(FarmFraming, WrongMagicIsCorrupt)
{
    std::string wire = frame("payload");
    wire[0] ^= 0x01;
    FrameReader reader;
    reader.push(wire.data(), wire.size());
    std::string got;
    EXPECT_EQ(reader.next(&got), FrameReader::Status::Corrupt);
}

TEST(FarmFraming, OversizedLengthIsCorruptNotAnAllocation)
{
    // Header claiming a payload over kMaxFramePayload: must flag
    // corruption immediately rather than waiting for (or allocating)
    // 4 GiB that will never arrive.
    std::string wire;
    const std::uint32_t magic = kFrameMagic;
    const std::uint32_t len = 0xffffffffu;
    const std::uint32_t crc = 0;
    wire.append(reinterpret_cast<const char*>(&magic), 4);
    wire.append(reinterpret_cast<const char*>(&len), 4);
    wire.append(reinterpret_cast<const char*>(&crc), 4);
    FrameReader reader;
    reader.push(wire.data(), wire.size());
    std::string got;
    EXPECT_EQ(reader.next(&got), FrameReader::Status::Corrupt);
}

TEST(FarmFraming, EveryPayloadBitFlipTripsTheCrc)
{
    const std::string payload = "bitflip target";
    const std::string clean = frame(payload);
    for (std::size_t byte = kFrameHeader; byte < clean.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string wire = clean;
            wire[byte] ^= static_cast<char>(1 << bit);
            FrameReader reader;
            reader.push(wire.data(), wire.size());
            std::string got;
            EXPECT_EQ(reader.next(&got), FrameReader::Status::Corrupt)
                << "byte " << byte << " bit " << bit;
        }
    }
}

// ---- message codecs ----

TEST(FarmMessages, HelloRoundTrip)
{
    HelloMsg msg;
    msg.version = kFarmProtocolVersion;
    msg.scope = 0xdeadbeefcafef00dull;
    msg.timeoutMs = 1500;
    const std::string payload = encodeHello(msg);
    EXPECT_EQ(payloadType(payload), MsgType::Hello);
    HelloMsg out;
    ASSERT_TRUE(decodeHello(payload, &out));
    EXPECT_EQ(out.version, msg.version);
    EXPECT_EQ(out.scope, msg.scope);
    EXPECT_EQ(out.timeoutMs, msg.timeoutMs);
}

TEST(FarmMessages, HelloOkAndRejectRoundTrip)
{
    const std::string ok = encodeHelloOk("adept-v0 on P100");
    EXPECT_EQ(payloadType(ok), MsgType::HelloOk);
    std::string text;
    ASSERT_TRUE(decodeHelloOk(ok, &text));
    EXPECT_EQ(text, "adept-v0 on P100");

    const std::string reject = encodeHelloReject("scope mismatch");
    EXPECT_EQ(payloadType(reject), MsgType::HelloReject);
    ASSERT_TRUE(decodeHelloReject(reject, &text));
    EXPECT_EQ(text, "scope mismatch");
}

TEST(FarmMessages, EvalRequestRoundTripsEditsExactly)
{
    EvalRequest req;
    req.seq = 42;
    req.useCache = true;
    mut::Edit del;
    del.kind = mut::EditKind::InstrDelete;
    del.srcUid = 7;
    mut::Edit copy;
    copy.kind = mut::EditKind::InstrCopy;
    copy.srcUid = 3;
    copy.dstUid = 9;
    copy.newUid = 1234; // Must survive the wire: clones depend on it.
    mut::Edit oprepl;
    oprepl.kind = mut::EditKind::OperandReplace;
    oprepl.srcUid = 5;
    oprepl.opIndex = 1;
    oprepl.newOperand = ir::Operand::imm(-17);
    req.edits = {del, copy, oprepl};

    const std::string payload = encodeEvalRequest(req);
    EXPECT_EQ(payloadType(payload), MsgType::Eval);
    EvalRequest out;
    ASSERT_TRUE(decodeEvalRequest(payload, &out));
    EXPECT_EQ(out.seq, req.seq);
    EXPECT_EQ(out.useCache, req.useCache);
    ASSERT_EQ(out.edits.size(), req.edits.size());
    EXPECT_EQ(mut::serializeEdits(out.edits),
              mut::serializeEdits(req.edits));
    EXPECT_EQ(out.edits[1].newUid, 1234u);
}

TEST(FarmMessages, EvalReplyRoundTripsExactDoubleBits)
{
    // Fitness values feed the deterministic trajectory; the wire must
    // carry exact bits, not a decimal rendering.
    const double values[] = {0.1, 1.0 / 3.0,
                             std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::denorm_min()};
    for (const double ms : values) {
        EvalReply reply;
        reply.seq = 99;
        reply.outcome.result.valid = true;
        reply.outcome.result.objectives = {ms};
        reply.outcome.result.failReason = "why not";
        reply.outcome.failure = core::EvalFailure::None;
        reply.outcome.simulated = true;
        reply.outcome.rejected = false;
        reply.programKey = std::string("key\0with nul", 12);

        const std::string payload = encodeEvalReply(reply);
        EXPECT_EQ(payloadType(payload), MsgType::EvalResult);
        EvalReply out;
        ASSERT_TRUE(decodeEvalReply(payload, &out));
        EXPECT_EQ(out.seq, reply.seq);
        EXPECT_EQ(out.outcome.result.valid, reply.outcome.result.valid);
        EXPECT_EQ(std::bit_cast<std::uint64_t>(out.outcome.result.ms()),
                  std::bit_cast<std::uint64_t>(ms));
        EXPECT_EQ(out.outcome.result.failReason,
                  reply.outcome.result.failReason);
        EXPECT_EQ(out.outcome.failure, reply.outcome.failure);
        EXPECT_EQ(out.outcome.simulated, reply.outcome.simulated);
        EXPECT_EQ(out.outcome.rejected, reply.outcome.rejected);
        EXPECT_EQ(out.programKey, reply.programKey);
    }
}

TEST(FarmMessages, EvalReplyCarriesTheFullObjectiveVector)
{
    // v2 wire format: the reply marshals the whole objective vector
    // (time, sectors, divergence), not just the scalar — a Pareto
    // search over remote workers depends on every dimension arriving
    // with exact bits.
    EvalReply reply;
    reply.seq = 7;
    reply.outcome.result =
        core::FitnessResult::pass(1.25, 96.0, 1.0 / 3.0);
    reply.outcome.simulated = true;
    reply.programKey = "k";

    const std::string payload = encodeEvalReply(reply);
    EvalReply out;
    ASSERT_TRUE(decodeEvalReply(payload, &out));
    ASSERT_EQ(out.outcome.result.objectives.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(std::bit_cast<std::uint64_t>(
                      out.outcome.result.objectives[i]),
                  std::bit_cast<std::uint64_t>(
                      reply.outcome.result.objectives[i]));
}

TEST(FarmMessages, PingPongRoundTrip)
{
    const std::string ping = encodePing(0x0123456789abcdefull);
    EXPECT_EQ(payloadType(ping), MsgType::Ping);
    std::uint64_t nonce = 0;
    ASSERT_TRUE(decodePing(ping, &nonce));
    EXPECT_EQ(nonce, 0x0123456789abcdefull);

    const std::string pong = encodePong(7);
    EXPECT_EQ(payloadType(pong), MsgType::Pong);
    ASSERT_TRUE(decodePong(pong, &nonce));
    EXPECT_EQ(nonce, 7u);
}

TEST(FarmMessages, EveryPrefixTruncationAndTrailingByteFailsToDecode)
{
    EvalRequest req;
    req.seq = 1;
    mut::Edit e;
    e.kind = mut::EditKind::InstrSwap;
    e.srcUid = 2;
    e.dstUid = 3;
    req.edits = {e};
    EvalReply reply;
    reply.outcome.result = core::FitnessResult::fail("nope");
    reply.programKey = "k";

    const std::string payloads[] = {
        encodeHello({}),          encodeHelloOk("banner"),
        encodeHelloReject("no"),  encodeEvalRequest(req),
        encodeEvalReply(reply),   encodePing(1),
        encodePong(2),
    };
    const auto decodesAs = [](std::string_view p) {
        HelloMsg hello;
        std::string text;
        EvalRequest er;
        EvalReply ep;
        std::uint64_t nonce;
        return decodeHello(p, &hello) || decodeHelloOk(p, &text) ||
               decodeHelloReject(p, &text) || decodeEvalRequest(p, &er) ||
               decodeEvalReply(p, &ep) || decodePing(p, &nonce) ||
               decodePong(p, &nonce);
    };
    for (const auto& payload : payloads) {
        EXPECT_TRUE(decodesAs(payload));
        for (std::size_t cut = 0; cut < payload.size(); ++cut) {
            EXPECT_FALSE(
                decodesAs(std::string_view(payload).substr(0, cut)))
                << "prefix length " << cut;
        }
        EXPECT_FALSE(decodesAs(payload + 'x')) << "trailing byte";
    }
    EXPECT_EQ(payloadType(""), MsgType{0});
}

TEST(FarmMessages, DecoderRejectsWrongMessageType)
{
    HelloMsg hello;
    EXPECT_FALSE(decodeHello(encodePing(1), &hello));
    std::uint64_t nonce;
    EXPECT_FALSE(decodePing(encodeHello({}), &nonce));
}

// ---- handshake / session over a real socketpair ----

constexpr const char* kToyKernel = R"(
kernel @toy params 1 regs 8 shared 0 local 0 {
entry:
    r1 = tid
    r2 = mul.i32 r1, 2
    r3 = cvt.i32.i64 r1
    r4 = mul.i64 r3, 4
    r5 = add.i64 r0, r4
    st.i32.global r5, r2
    ret
}
)";

class ToyFitness : public core::FitnessFunction {
  public:
    core::FitnessResult
    evaluate(const core::CompiledVariant& variant) const override
    {
        if (variant.programs.find("toy") == nullptr)
            return core::FitnessResult::fail("kernel missing");
        return core::FitnessResult::pass(1.0);
    }
    std::string name() const override { return "toy"; }
};

/// Runs a WorkerSession on one end of a socketpair in a thread and
/// hands the test the client end.
class SessionHarness {
  public:
    SessionHarness()
        : module_(parse()), compiler_(module_),
          scope_(trajectoryScope(compiler_, fitness_)),
          session_(compiler_, fitness_, scope_, "toy banner")
    {
        int fds[2];
        EXPECT_EQ(
            ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        clientFd_ = fds[0];
        serverFd_ = fds[1];
        thread_ = std::thread([this] { session_.serve(serverFd_); });
    }

    ~SessionHarness()
    {
        if (clientFd_ >= 0)
            ::close(clientFd_);
        thread_.join();
        ::close(serverFd_);
    }

    int fd() const { return clientFd_; }
    std::uint64_t scope() const { return scope_; }
    const WorkerSession& session() const { return session_; }

    void
    closeClient()
    {
        ::close(clientFd_);
        clientFd_ = -1;
    }

    void
    send(std::string_view payload)
    {
        std::string wire;
        appendFrame(&wire, payload);
        ASSERT_TRUE(writeAll(clientFd_, wire.data(), wire.size()));
    }

    std::string
    receive()
    {
        std::string payload;
        char chunk[256];
        while (true) {
            const auto status = reader_.next(&payload);
            if (status == FrameReader::Status::Frame)
                return payload;
            EXPECT_EQ(status, FrameReader::Status::NeedMore);
            const auto n = ::read(clientFd_, chunk, sizeof chunk);
            if (n <= 0) {
                ADD_FAILURE() << "session closed before replying";
                return {};
            }
            reader_.push(chunk, static_cast<std::size_t>(n));
        }
    }

  private:
    static ir::Module
    parse()
    {
        auto res = ir::parseModule(kToyKernel);
        EXPECT_TRUE(res.ok) << res.error;
        return std::move(res.module);
    }

    ir::Module module_;
    ToyFitness fitness_;
    core::VariantCompiler compiler_;
    std::uint64_t scope_;
    WorkerSession session_;
    FrameReader reader_;
    std::thread thread_;
    int clientFd_ = -1;
    int serverFd_ = -1;
};

TEST(FarmHandshake, MatchingScopeIsAcceptedAndServesEvals)
{
    SessionHarness harness;
    HelloMsg hello;
    hello.scope = harness.scope();
    hello.timeoutMs = 5000;
    harness.send(encodeHello(hello));
    const std::string verdict = harness.receive();
    ASSERT_EQ(payloadType(verdict), MsgType::HelloOk);
    std::string banner;
    ASSERT_TRUE(decodeHelloOk(verdict, &banner));
    EXPECT_EQ(banner, "toy banner");

    EvalRequest req;
    req.seq = 5;
    harness.send(encodeEvalRequest(req));
    const std::string result = harness.receive();
    ASSERT_EQ(payloadType(result), MsgType::EvalResult);
    EvalReply reply;
    ASSERT_TRUE(decodeEvalReply(result, &reply));
    EXPECT_EQ(reply.seq, 5u);
    EXPECT_TRUE(reply.outcome.result.valid);
    EXPECT_EQ(reply.outcome.result.ms(), 1.0);

    std::uint64_t nonce = 0;
    harness.send(encodePing(31337));
    ASSERT_TRUE(decodePong(harness.receive(), &nonce));
    EXPECT_EQ(nonce, 31337u);
}

TEST(FarmHandshake, WrongScopeIsRejected)
{
    SessionHarness harness;
    HelloMsg hello;
    hello.scope = harness.scope() ^ 1; // A different baseline/fitness.
    harness.send(encodeHello(hello));
    const std::string verdict = harness.receive();
    ASSERT_EQ(payloadType(verdict), MsgType::HelloReject);
    std::string reason;
    ASSERT_TRUE(decodeHelloReject(verdict, &reason));
    EXPECT_NE(reason.find("scope"), std::string::npos) << reason;
    EXPECT_EQ(harness.session().served(), 0u);
}

TEST(FarmHandshake, WrongProtocolVersionIsRejected)
{
    SessionHarness harness;
    HelloMsg hello;
    hello.version = kFarmProtocolVersion + 1;
    hello.scope = harness.scope();
    harness.send(encodeHello(hello));
    EXPECT_EQ(payloadType(harness.receive()), MsgType::HelloReject);
}

TEST(FarmHandshake, PeerClosingMidFrameEndsTheSessionCleanly)
{
    SessionHarness harness;
    // Half a frame header, then hang up: the session must return (the
    // harness destructor joins the serve thread), not crash or spin.
    const std::string wire = frame("never finished");
    ASSERT_TRUE(writeAll(harness.fd(), wire.data(), kFrameHeader / 2));
    harness.closeClient();
}

TEST(FarmHandshake, GarbageBytesEndTheSessionCleanly)
{
    SessionHarness harness;
    const std::string junk(64, '\x5a'); // No valid magic anywhere.
    ASSERT_TRUE(writeAll(harness.fd(), junk.data(), junk.size()));
    harness.closeClient();
}

TEST(FarmScope, DiffersAcrossFitnessAndBaseline)
{
    auto res = ir::parseModule(kToyKernel);
    ASSERT_TRUE(res.ok) << res.error;
    ToyFitness fitness;
    core::VariantCompiler compiler(res.module);
    const auto scope = trajectoryScope(compiler, fitness);
    EXPECT_NE(scope, 0u); // 0 is reserved for "no scope".

    class OtherFitness : public ToyFitness {
      public:
        std::string name() const override { return "other"; }
    } other;
    EXPECT_NE(trajectoryScope(compiler, other), scope);
}

} // namespace
} // namespace gevo::farm
