/// Differential testing: the cleanup pipeline (DCE + constant folding +
/// CFG simplification) must never change what a kernel computes. We
/// generate random straight-line-and-branch programs, run each through
/// the simulator before and after optimization, and require identical
/// observable memory.
///
/// This is the property that makes the whole reproduction sound: fitness
/// evaluation optimizes every variant before timing it, so a semantics-
/// changing pass would silently corrupt every experiment.

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/verifier.h"
#include "opt/passes.h"
#include "sim/device_memory.h"
#include "sim/executor.h"
#include "sim/program.h"
#include "support/rng.h"

namespace gevo {
namespace {

using ir::IRBuilder;
using ir::MemSpace;
using ir::MemWidth;
using ir::Opcode;
using ir::Operand;

/// Pool of pure scalar opcodes the generator draws from.
constexpr Opcode kAluPool[] = {
    Opcode::AddI32, Opcode::SubI32, Opcode::MulI32, Opcode::DivI32,
    Opcode::RemI32, Opcode::MinI32, Opcode::MaxI32, Opcode::And,
    Opcode::Or,     Opcode::Xor,    Opcode::Shl,    Opcode::ShrL,
    Opcode::ShrA,   Opcode::AddF32, Opcode::SubF32, Opcode::MulF32,
    Opcode::CmpLtI32, Opcode::CmpEqI32, Opcode::CmpGeI32,
    Opcode::CvtI32ToI64, Opcode::CvtI64ToI32, Opcode::CvtI32ToF32,
};

/// Build a random kernel: a chain of ALU ops over params/tid/immediates,
/// one random diamond branch, and stores of a random subset of registers
/// (leaving the rest dead for DCE to chew on).
ir::Module
randomModule(std::uint64_t seed)
{
    Rng rng(seed);
    ir::Module mod;
    IRBuilder b(mod);
    b.startKernel("fuzz", 2);
    const auto entry = b.block("entry");
    (void)entry;

    std::vector<Operand> values = {b.param(1), b.tid(), b.lane()};
    const int chainLen = 8 + static_cast<int>(rng.below(24));
    for (int i = 0; i < chainLen; ++i) {
        const auto op = kAluPool[rng.below(std::size(kAluPool))];
        const auto pickOperand = [&]() -> Operand {
            if (rng.chance(0.3))
                return Operand::imm(rng.range(-7, 13));
            return values[rng.below(values.size())];
        };
        const auto a = pickOperand();
        const int nops = ir::opInfo(op).numOps;
        values.push_back(nops == 1 ? b.emitOp(op, {a})
                                   : b.emitOp(op, {a, pickOperand()}));
    }

    // One diamond over a random condition (possibly constant).
    const auto cond = rng.chance(0.3)
                          ? Operand::imm(rng.below(2))
                          : values[rng.below(values.size())];
    const auto bbT = b.block("then");
    const auto bbF = b.block("else");
    const auto bbJ = b.block("join");
    b.setInsert(0);
    const auto merged = b.newReg();
    b.brc(cond, bbT, bbF);
    b.setInsert(bbT);
    b.movTo(merged, values[rng.below(values.size())]);
    b.br(bbJ);
    b.setInsert(bbF);
    b.movTo(merged, values[rng.below(values.size())]);
    b.br(bbJ);
    b.setInsert(bbJ);
    values.push_back(merged);

    // Store a random subset (always at least one) of the values.
    const auto tid64 = b.sext64(b.tid());
    int stored = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (!rng.chance(0.35) && !(i + 1 == values.size() && stored == 0))
            continue;
        const auto slot = b.ladd(
            b.lmul(tid64, Operand::imm(8 * (stored + 1))),
            Operand::imm(8 * static_cast<std::int64_t>(stored)));
        const auto addr = b.ladd(b.param(0), slot);
        b.st(MemSpace::Global, MemWidth::I64, addr, values[i]);
        ++stored;
        if (stored == 4)
            break;
    }
    b.ret();
    return mod;
}

/// Run and return a snapshot of the output arena.
std::vector<std::uint8_t>
runSnapshot(const ir::Module& mod, bool* ok)
{
    sim::DeviceMemory mem(1 << 20);
    const auto out = mem.alloc(1 << 16);
    const auto prog = sim::Program::decode(mod.function(0));
    const auto res = sim::launchKernel(
        sim::p100(), mem, prog, {2, 64},
        {static_cast<std::uint64_t>(out), 12345});
    *ok = res.ok();
    std::vector<std::uint8_t> snap(1 << 16);
    mem.copyOut(snap.data(), out, 1 << 16);
    return snap;
}

class DifferentialOpt : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialOpt, PipelinePreservesObservableBehaviour)
{
    const auto mod = randomModule(GetParam());
    ASSERT_TRUE(ir::verifyModule(mod).ok())
        << ir::verifyModule(mod).message();

    bool okBefore = false;
    const auto before = runSnapshot(mod, &okBefore);
    ASSERT_TRUE(okBefore);

    auto optimized = mod.clone();
    opt::runCleanupPipeline(optimized);
    ASSERT_TRUE(ir::verifyModule(optimized).ok())
        << ir::verifyModule(optimized).message();
    // The pipeline must never grow the program.
    EXPECT_LE(optimized.instrCount(), mod.instrCount());

    bool okAfter = false;
    const auto after = runSnapshot(optimized, &okAfter);
    ASSERT_TRUE(okAfter);
    EXPECT_EQ(before, after) << "optimization changed observable output "
                                "for seed "
                             << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialOpt,
                         ::testing::Range<std::uint64_t>(1, 41));

} // namespace
} // namespace gevo
