/// Mutation robustness fuzzing: the evolutionary search throws thousands
/// of random patches at the real application kernels. Whatever the patch,
/// the system must never crash — every variant either verifies and runs
/// to a deterministic result/fault, or is cleanly rejected.
///
/// This is the paper's implicit contract (Sec V-A finds 1394-edit
/// individuals that still run) exercised end to end.

#include <gtest/gtest.h>

#include "apps/adept/driver.h"
#include "apps/adept/fitness.h"
#include "apps/simcov/driver.h"
#include "apps/simcov/fitness.h"
#include "core/fitness.h"
#include "mutation/patch.h"
#include "mutation/sampler.h"
#include "sim/executor.h"
#include "support/rng.h"

#include "../sim/sim_test_util.h"

namespace gevo {
namespace {

using ModeGuard = sim::testutil::InterpModeGuard;

/// Evaluate the same variant under both interpreters and require
/// identical validity, bit-identical fitness, and identical failure
/// text — random mutants are the adversarial corpus for the trace
/// interpreter's fast paths.
void
expectModesAgree(const ir::Module& base,
                 const std::vector<mut::Edit>& edits,
                 const core::FitnessFunction& fitness)
{
    core::FitnessResult trace;
    core::FitnessResult ref;
    {
        ModeGuard g(sim::InterpMode::Trace);
        trace = core::evaluateVariant(base, edits, fitness);
    }
    {
        ModeGuard g(sim::InterpMode::Reference);
        ref = core::evaluateVariant(base, edits, fitness);
    }
    EXPECT_EQ(trace.valid, ref.valid) << mut::serializeEdits(edits);
    if (trace.valid && ref.valid)
        EXPECT_EQ(trace.ms(), ref.ms()) << mut::serializeEdits(edits);
    else
        EXPECT_EQ(trace.failReason, ref.failReason)
            << mut::serializeEdits(edits);
}

class AdeptFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdeptFuzz, RandomPatchesNeverCrashAndStayDeterministic)
{
    adept::SequenceSetConfig cfg;
    cfg.numPairs = 3;
    cfg.minLen = 24;
    cfg.maxLen = 48;
    cfg.seed = 5;
    const auto pairs = adept::generatePairs(cfg);
    const auto built = adept::buildAdeptV1(adept::ScoringParams{}, 64);
    const adept::AdeptDriver driver(pairs, adept::ScoringParams{}, 1, 64);
    adept::AdeptFitness fitness(driver, sim::p100());

    Rng rng(GetParam());
    int valid = 0;
    for (int trial = 0; trial < 25; ++trial) {
        // Build a random patch of 1-6 stacked edits.
        std::vector<mut::Edit> edits;
        const int n = 1 + static_cast<int>(rng.below(6));
        for (int i = 0; i < n; ++i) {
            const auto patched = mut::applyPatch(built.module, edits);
            const auto e = mut::sampleEdit(patched, rng);
            if (e)
                edits.push_back(*e);
        }
        const auto a = core::evaluateVariant(built.module, edits, fitness);
        const auto b = core::evaluateVariant(built.module, edits, fitness);
        EXPECT_EQ(a.valid, b.valid);
        if (a.valid) {
            EXPECT_DOUBLE_EQ(a.ms(), b.ms());
            ++valid;
        } else {
            EXPECT_FALSE(a.failReason.empty());
        }
        expectModesAgree(built.module, edits, fitness);
    }
    // Mutational robustness (paper Sec VIII cites 20-40% neutral edits):
    // a healthy fraction of random patches must still pass everything.
    EXPECT_GT(valid, 2) << "suspiciously fragile under seed "
                        << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdeptFuzz,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

class SimcovFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimcovFuzz, RandomPatchesNeverCrash)
{
    simcov::SimcovConfig cfg;
    cfg.gridW = 16;
    cfg.steps = 6;
    const auto built = simcov::buildSimcov(cfg);
    const simcov::SimcovDriver driver(cfg);
    simcov::SimcovFitness fitness(driver, sim::p100());

    Rng rng(GetParam());
    for (int trial = 0; trial < 12; ++trial) {
        std::vector<mut::Edit> edits;
        const int n = 1 + static_cast<int>(rng.below(4));
        for (int i = 0; i < n; ++i) {
            const auto patched = mut::applyPatch(built.module, edits);
            const auto e = mut::sampleEdit(patched, rng);
            if (e)
                edits.push_back(*e);
        }
        const auto r = core::evaluateVariant(built.module, edits, fitness);
        if (!r.valid) {
            EXPECT_FALSE(r.failReason.empty());
        }
        expectModesAgree(built.module, edits, fitness);
    }
    SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimcovFuzz, ::testing::Values(7u, 17u, 27u));

TEST(OversubscribeModel, TimingScalesWithBatchWhileFunctionStaysFixed)
{
    // The saturated-regime wave model: more logical blocks means
    // proportionally more simulated time, identical results.
    adept::SequenceSetConfig cfg;
    cfg.numPairs = 4;
    cfg.seed = 3;
    const auto pairs = adept::generatePairs(cfg);
    const auto built = adept::buildAdeptV0(adept::ScoringParams{}, 64);
    adept::AdeptDriver driver(pairs, adept::ScoringParams{}, 0, 64);

    driver.setOversubscribe(64);
    const auto small = driver.run(built.module, sim::p100());
    driver.setOversubscribe(256);
    const auto big = driver.run(built.module, sim::p100());
    ASSERT_TRUE(small.ok());
    ASSERT_TRUE(big.ok());
    for (std::size_t i = 0; i < small.results.size(); ++i)
        EXPECT_TRUE(small.results[i] == big.results[i]);
    EXPECT_NEAR(big.totalMs / small.totalMs, 4.0, 0.5);
}

} // namespace
} // namespace gevo
