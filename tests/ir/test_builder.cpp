#include "ir/builder.h"

#include <gtest/gtest.h>

#include "ir/verifier.h"

namespace gevo::ir {
namespace {

TEST(Builder, BuildsVerifiableKernel)
{
    Module mod;
    IRBuilder b(mod);
    b.startKernel("k", 2);
    const auto entry = b.block("entry");
    (void)entry;
    const auto t = b.tid();
    const auto sum = b.iadd(t, b.param(0));
    const auto addr = b.sext64(sum);
    b.st(MemSpace::Global, MemWidth::I32, addr, sum);
    b.ret();

    EXPECT_TRUE(verifyModule(mod).ok()) << verifyModule(mod).message();
    EXPECT_EQ(mod.function(0).instrCount(), 5u);
}

TEST(Builder, FreshRegistersDoNotCollideWithParams)
{
    Module mod;
    IRBuilder b(mod);
    b.startKernel("k", 3);
    b.block("entry");
    const auto r = b.tid();
    EXPECT_GE(r.value, 3);
    b.ret();
}

TEST(Builder, UidsAreUniqueAndMonotonic)
{
    Module mod;
    IRBuilder b(mod);
    b.startKernel("k", 0);
    b.block("entry");
    b.tid();
    b.tid();
    b.ret();
    const auto& instrs = mod.function(0).blocks[0].instrs;
    EXPECT_LT(instrs[0].uid, instrs[1].uid);
    EXPECT_LT(instrs[1].uid, instrs[2].uid);
    EXPECT_EQ(mod.uidCounter(), instrs[2].uid);
}

TEST(Builder, EmitToOverwritesRegister)
{
    Module mod;
    IRBuilder b(mod);
    b.startKernel("k", 0);
    b.block("entry");
    const auto counter = b.mov(b.imm(0));
    b.iaddTo(counter, counter, b.imm(1));
    b.ret();
    const auto& instrs = mod.function(0).blocks[0].instrs;
    EXPECT_EQ(instrs[1].dest, static_cast<std::int32_t>(counter.value));
}

TEST(Builder, BranchTargetsRecorded)
{
    Module mod;
    IRBuilder b(mod);
    b.startKernel("k", 0);
    const auto entry = b.block("entry");
    // Forward declaration pattern: create blocks first, then fill.
    const auto thenB = b.block("then");
    const auto exitB = b.block("exit");
    b.setInsert(entry);
    const auto c = b.ieq(b.tid(), b.imm(0));
    b.brc(c, thenB, exitB);
    b.setInsert(thenB);
    b.br(exitB);
    b.setInsert(exitB);
    b.ret();

    EXPECT_TRUE(verifyModule(mod).ok()) << verifyModule(mod).message();
    const auto& term = mod.function(0).blocks[entry].terminator();
    EXPECT_EQ(term.op, Opcode::CondBr);
    EXPECT_EQ(term.ops[1].value, thenB);
    EXPECT_EQ(term.ops[2].value, exitB);
}

TEST(Builder, SourceLocationsIntern)
{
    Module mod;
    IRBuilder b(mod);
    b.startKernel("k", 0);
    b.block("entry");
    b.setLoc("adept.cu:17");
    const auto x = b.tid();
    (void)x;
    b.setLoc("adept.cu:18");
    b.tid();
    b.setLoc("adept.cu:17");
    b.tid();
    b.ret();
    const auto& instrs = mod.function(0).blocks[0].instrs;
    EXPECT_EQ(mod.locString(instrs[0].loc), "adept.cu:17");
    EXPECT_EQ(mod.locString(instrs[1].loc), "adept.cu:18");
    EXPECT_EQ(instrs[0].loc, instrs[2].loc);
}

TEST(Builder, MemoryAttributesSet)
{
    Module mod;
    IRBuilder b(mod);
    b.startKernel("k", 1, /*sharedBytes=*/256, /*localBytes=*/64);
    b.block("entry");
    const auto v = b.ld(MemSpace::Shared, MemWidth::F32, b.imm(4));
    b.st(MemSpace::Local, MemWidth::I16, b.imm(0), v);
    const auto old = b.atomic(AtomicOp::AddI32, MemSpace::Global,
                              b.param(0), b.imm(1));
    (void)old;
    b.ret();

    const auto& fn = mod.function(0);
    EXPECT_EQ(fn.sharedBytes, 256u);
    EXPECT_EQ(fn.localBytes, 64u);
    const auto& instrs = fn.blocks[0].instrs;
    EXPECT_EQ(instrs[0].space, MemSpace::Shared);
    EXPECT_EQ(instrs[0].width, MemWidth::F32);
    EXPECT_EQ(instrs[1].space, MemSpace::Local);
    EXPECT_EQ(instrs[2].atom, AtomicOp::AddI32);
    EXPECT_TRUE(verifyModule(mod).ok());
}

TEST(Function, FindUid)
{
    Module mod;
    IRBuilder b(mod);
    b.startKernel("k", 0);
    b.block("entry");
    const auto a = b.tid();
    (void)a;
    b.ret();
    const auto& fn = mod.function(0);
    const auto uid = fn.blocks[0].instrs[0].uid;
    const auto pos = fn.findUid(uid);
    ASSERT_TRUE(pos.valid());
    EXPECT_EQ(fn.at(pos).uid, uid);
    EXPECT_FALSE(fn.findUid(999999).valid());
}

TEST(Module, CloneIsDeepAndPreservesUids)
{
    Module mod;
    IRBuilder b(mod);
    b.startKernel("k", 0);
    b.block("entry");
    b.tid();
    b.ret();

    Module copy = mod.clone();
    EXPECT_EQ(copy.uidCounter(), mod.uidCounter());
    copy.function(0).blocks[0].instrs[0].dest = 99;
    EXPECT_NE(copy.function(0).blocks[0].instrs[0].dest,
              mod.function(0).blocks[0].instrs[0].dest);
}

} // namespace
} // namespace gevo::ir
