#include "ir/cfg.h"

#include <gtest/gtest.h>

#include "ir/parser.h"

namespace gevo::ir {
namespace {

Function
parseFn(const char* text)
{
    auto res = parseModule(text);
    EXPECT_TRUE(res.ok) << res.error;
    return res.module.function(0);
}

// Diamond:      entry -> {left, right} -> join -> exit(ret)
constexpr const char* kDiamond = R"(
kernel @k params 0 regs 8 shared 0 local 0 {
entry:
    r0 = tid
    r1 = cmp.lt.i32 r0, 16
    brc r1, left, right
left:
    r2 = mov 1
    br join
right:
    r3 = mov 2
    br join
join:
    ret
}
)";

TEST(Cfg, DiamondSuccessorsAndPreds)
{
    const auto fn = parseFn(kDiamond);
    const Cfg cfg(fn);
    ASSERT_EQ(cfg.size(), 4u);
    EXPECT_EQ(cfg.succs(0).size(), 2u);
    EXPECT_EQ(cfg.succs(1).size(), 1u);
    EXPECT_EQ(cfg.preds(3).size(), 2u);
    EXPECT_TRUE(cfg.succs(3).empty());
}

TEST(Cfg, DiamondDominators)
{
    const auto fn = parseFn(kDiamond);
    const Cfg cfg(fn);
    EXPECT_EQ(cfg.idom(0), 0);
    EXPECT_EQ(cfg.idom(1), 0);
    EXPECT_EQ(cfg.idom(2), 0);
    EXPECT_EQ(cfg.idom(3), 0);
    EXPECT_TRUE(cfg.dominates(0, 3));
    EXPECT_FALSE(cfg.dominates(1, 3));
    EXPECT_TRUE(cfg.dominates(2, 2));
}

TEST(Cfg, DiamondPostDominators)
{
    const auto fn = parseFn(kDiamond);
    const Cfg cfg(fn);
    // The reconvergence point of the entry branch is the join block.
    EXPECT_EQ(cfg.ipdom(0), 3);
    EXPECT_EQ(cfg.ipdom(1), 3);
    EXPECT_EQ(cfg.ipdom(2), 3);
    EXPECT_EQ(cfg.ipdom(3), Cfg::kExit);
}

constexpr const char* kLoop = R"(
kernel @k params 0 regs 8 shared 0 local 0 {
entry:
    r0 = mov 0
    br header
header:
    r1 = cmp.lt.i32 r0, 10
    brc r1, body, exit
body:
    r0 = add.i32 r0, 1
    br header
exit:
    ret
}
)";

TEST(Cfg, LoopStructure)
{
    const auto fn = parseFn(kLoop);
    const Cfg cfg(fn);
    // entry=0 header=1 body=2 exit=3
    EXPECT_EQ(cfg.idom(1), 0);
    EXPECT_EQ(cfg.idom(2), 1);
    EXPECT_EQ(cfg.idom(3), 1);
    EXPECT_EQ(cfg.ipdom(1), 3);
    EXPECT_EQ(cfg.ipdom(2), 1);
    EXPECT_TRUE(cfg.dominates(1, 2));
    EXPECT_FALSE(cfg.dominates(2, 3));
}

TEST(Cfg, RpoStartsAtEntryAndCoversReachable)
{
    const auto fn = parseFn(kLoop);
    const Cfg cfg(fn);
    ASSERT_FALSE(cfg.rpo().empty());
    EXPECT_EQ(cfg.rpo().front(), 0);
    EXPECT_EQ(cfg.rpo().size(), 4u);
}

constexpr const char* kUnreachable = R"(
kernel @k params 0 regs 8 shared 0 local 0 {
entry:
    br exit
orphan:
    r0 = mov 7
    br exit
exit:
    ret
}
)";

TEST(Cfg, UnreachableBlockDetected)
{
    const auto fn = parseFn(kUnreachable);
    const Cfg cfg(fn);
    EXPECT_TRUE(cfg.reachable(0));
    EXPECT_FALSE(cfg.reachable(1));
    EXPECT_TRUE(cfg.reachable(2));
    EXPECT_EQ(cfg.idom(1), -2);
}

constexpr const char* kInfinite = R"(
kernel @k params 0 regs 8 shared 0 local 0 {
entry:
    br spin
spin:
    r0 = add.i32 r0, 1
    br spin
}
)";

TEST(Cfg, InfiniteLoopGetsExitIpdom)
{
    const auto fn = parseFn(kInfinite);
    const Cfg cfg(fn);
    // No path to exit: reconvergence degenerates to the virtual exit.
    EXPECT_EQ(cfg.ipdom(0), Cfg::kExit);
    EXPECT_EQ(cfg.ipdom(1), Cfg::kExit);
}

constexpr const char* kNested = R"(
kernel @k params 0 regs 8 shared 0 local 0 {
entry:
    brc r0, outerT, join
outerT:
    brc r1, innerT, innerJ
innerT:
    br innerJ
innerJ:
    br join
join:
    ret
}
)";

TEST(Cfg, NestedBranchesHaveNestedReconvergence)
{
    const auto fn = parseFn(kNested);
    const Cfg cfg(fn);
    // entry=0 outerT=1 innerT=2 innerJ=3 join=4
    EXPECT_EQ(cfg.ipdom(0), 4);
    EXPECT_EQ(cfg.ipdom(1), 3);
    EXPECT_EQ(cfg.ipdom(2), 3);
    EXPECT_EQ(cfg.ipdom(3), 4);
}

} // namespace
} // namespace gevo::ir
