#include "ir/eval.h"

#include <gtest/gtest.h>

#include <limits>

namespace gevo::ir {
namespace {

TEST(Eval, I32Wraparound)
{
    const auto maxv = fromI32(std::numeric_limits<std::int32_t>::max());
    const auto r = evalScalar(Opcode::AddI32, maxv, 1);
    EXPECT_EQ(asI32(r), std::numeric_limits<std::int32_t>::min());
}

TEST(Eval, I32SignExtensionOfResults)
{
    const auto r = evalScalar(Opcode::SubI32, 0, 1);
    EXPECT_EQ(static_cast<std::int64_t>(r), -1);
}

TEST(Eval, DivisionByZeroIsZeroNotTrap)
{
    EXPECT_EQ(evalScalar(Opcode::DivI32, 5, 0), 0u);
    EXPECT_EQ(evalScalar(Opcode::RemI32, 5, 0), 0u);
    EXPECT_EQ(evalScalar(Opcode::DivI64, 5, 0), 0u);
}

TEST(Eval, DivisionOverflowGuard)
{
    const auto minv = fromI32(std::numeric_limits<std::int32_t>::min());
    EXPECT_EQ(asI32(evalScalar(Opcode::DivI32, minv, fromI32(-1))),
              std::numeric_limits<std::int32_t>::min());
    EXPECT_EQ(evalScalar(Opcode::RemI32, minv, fromI32(-1)), 0u);
}

TEST(Eval, MinMaxSigned)
{
    EXPECT_EQ(asI32(evalScalar(Opcode::MinI32, fromI32(-5), fromI32(3))),
              -5);
    EXPECT_EQ(asI32(evalScalar(Opcode::MaxI32, fromI32(-5), fromI32(3))),
              3);
}

TEST(Eval, F32RoundTrip)
{
    const auto a = fromF32(1.5f);
    const auto b = fromF32(2.25f);
    EXPECT_FLOAT_EQ(asF32(evalScalar(Opcode::AddF32, a, b)), 3.75f);
    EXPECT_FLOAT_EQ(asF32(evalScalar(Opcode::MulF32, a, b)), 3.375f);
    EXPECT_FLOAT_EQ(asF32(evalScalar(Opcode::DivF32, a, b)),
                    1.5f / 2.25f);
}

TEST(Eval, F32MinMaxIgnoresNanLikeCuda)
{
    const auto nan = fromF32(std::numeric_limits<float>::quiet_NaN());
    const auto one = fromF32(1.0f);
    // fmin/fmax return the non-NaN operand.
    EXPECT_FLOAT_EQ(asF32(evalScalar(Opcode::MinF32, nan, one)), 1.0f);
    EXPECT_FLOAT_EQ(asF32(evalScalar(Opcode::MaxF32, one, nan)), 1.0f);
}

TEST(Eval, ShiftsMaskAmount)
{
    EXPECT_EQ(evalScalar(Opcode::Shl, 1, 64), 1u);
    EXPECT_EQ(evalScalar(Opcode::Shl, 1, 65), 2u);
    EXPECT_EQ(evalScalar(Opcode::ShrL, 0x8000000000000000ull, 63), 1u);
}

TEST(Eval, ArithmeticShiftKeepsSign)
{
    const auto neg = static_cast<std::uint64_t>(-8);
    EXPECT_EQ(static_cast<std::int64_t>(evalScalar(Opcode::ShrA, neg, 1)),
              -4);
    EXPECT_EQ(evalScalar(Opcode::ShrL, neg, 1), neg >> 1);
}

TEST(Eval, NotI1Truthiness)
{
    EXPECT_EQ(evalScalar(Opcode::NotI1, 0), 1u);
    EXPECT_EQ(evalScalar(Opcode::NotI1, 1), 0u);
    EXPECT_EQ(evalScalar(Opcode::NotI1, 42), 0u);
}

TEST(Eval, SelectUsesTruthiness)
{
    EXPECT_EQ(evalScalar(Opcode::Select, 1, 10, 20), 10u);
    EXPECT_EQ(evalScalar(Opcode::Select, 0, 10, 20), 20u);
    EXPECT_EQ(evalScalar(Opcode::Select, 7, 10, 20), 10u);
}

TEST(Eval, ConversionSemantics)
{
    EXPECT_FLOAT_EQ(asF32(evalScalar(Opcode::CvtI32ToF32, fromI32(-3))),
                    -3.0f);
    EXPECT_EQ(asI32(evalScalar(Opcode::CvtF32ToI32, fromF32(-2.9f))), -2);
    EXPECT_EQ(asI32(evalScalar(Opcode::CvtF32ToI32,
                               fromF32(std::numeric_limits<float>::quiet_NaN()))),
              0);
    EXPECT_EQ(asI32(evalScalar(Opcode::CvtF32ToI32, fromF32(1e30f))),
              std::numeric_limits<std::int32_t>::max());
    // Sign extension through the i32<->i64 conversions.
    EXPECT_EQ(static_cast<std::int64_t>(
                  evalScalar(Opcode::CvtI32ToI64, fromI32(-7))),
              -7);
    EXPECT_EQ(asI32(evalScalar(Opcode::CvtI64ToI32,
                               0x1'0000'0005ull)),
              5);
}

TEST(Eval, ComparisonsProduceZeroOne)
{
    EXPECT_EQ(evalScalar(Opcode::CmpLtI32, fromI32(-1), fromI32(0)), 1u);
    EXPECT_EQ(evalScalar(Opcode::CmpGtI32, fromI32(-1), fromI32(0)), 0u);
    EXPECT_EQ(evalScalar(Opcode::CmpEqI64, 5, 5), 1u);
    EXPECT_EQ(evalScalar(Opcode::CmpLeF32, fromF32(1.0f), fromF32(1.0f)),
              1u);
    EXPECT_EQ(evalScalar(Opcode::CmpNeF32, fromF32(1.0f), fromF32(2.0f)),
              1u);
}

TEST(Eval, I64CompareIsSigned)
{
    const auto neg = static_cast<std::uint64_t>(-1);
    EXPECT_EQ(evalScalar(Opcode::CmpLtI64, neg, 0), 1u);
}

TEST(Eval, ScalarEvaluableClassification)
{
    EXPECT_TRUE(isScalarEvaluable(Opcode::AddI32));
    EXPECT_TRUE(isScalarEvaluable(Opcode::CmpLtF32));
    EXPECT_FALSE(isScalarEvaluable(Opcode::Load));
    EXPECT_FALSE(isScalarEvaluable(Opcode::Barrier));
    EXPECT_FALSE(isScalarEvaluable(Opcode::Br));
    EXPECT_FALSE(isScalarEvaluable(Opcode::Tid));
}

} // namespace
} // namespace gevo::ir
