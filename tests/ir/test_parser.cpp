#include "ir/parser.h"

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/printer.h"
#include "ir/verifier.h"

namespace gevo::ir {
namespace {

constexpr const char* kSample = R"(
; simple saxpy-like kernel
kernel @saxpy params 3 regs 16 shared 0 local 0 {
entry:
    r3 = tid
    r4 = cvt.i32.i64 r3
    r5 = mul.i64 r4, 4
    r6 = add.i64 r0, r5
    r7 = ld.f32.global r6
    r8 = mul.f32 r7, 2.0f
    r9 = add.i64 r1, r5
    st.f32.global r9, r8
    r10 = cmp.lt.i32 r3, r2
    brc r10, body, done
body:
    br done
done:
    ret
}
)";

TEST(Parser, ParsesValidKernel)
{
    const auto res = parseModule(kSample);
    ASSERT_TRUE(res.ok) << res.error;
    const auto* fn = res.module.findFunction("saxpy");
    ASSERT_NE(fn, nullptr);
    EXPECT_EQ(fn->numParams, 3u);
    EXPECT_EQ(fn->numRegs, 16u);
    EXPECT_EQ(fn->blocks.size(), 3u);
    EXPECT_TRUE(verifyModule(res.module).ok())
        << verifyModule(res.module).message();
}

TEST(Parser, ResolvesForwardLabels)
{
    const auto res = parseModule(kSample);
    ASSERT_TRUE(res.ok);
    const auto& fn = *res.module.findFunction("saxpy");
    const auto& brc = fn.blocks[0].terminator();
    EXPECT_EQ(brc.op, Opcode::CondBr);
    EXPECT_EQ(brc.ops[1].value, fn.blockIndexOf("body"));
    EXPECT_EQ(brc.ops[2].value, fn.blockIndexOf("done"));
}

TEST(Parser, FloatImmediatesBecomeF32Bits)
{
    const auto res = parseModule(kSample);
    ASSERT_TRUE(res.ok);
    const auto& fn = *res.module.findFunction("saxpy");
    const auto& mul = fn.blocks[0].instrs[5];
    EXPECT_EQ(mul.op, Opcode::MulF32);
    EXPECT_EQ(mul.ops[1], Operand::immF32(2.0f));
}

TEST(Parser, RoundTripsThroughPrinter)
{
    const auto first = parseModule(kSample);
    ASSERT_TRUE(first.ok);
    const auto text = printModule(first.module);
    const auto second = parseModule(text);
    ASSERT_TRUE(second.ok) << second.error;
    EXPECT_EQ(printModule(second.module), text);
}

TEST(Parser, RoundTripsBuilderOutput)
{
    Module mod;
    IRBuilder b(mod);
    b.startKernel("k", 2, 128, 16);
    const auto entry = b.block("entry");
    const auto loop = b.block("loop");
    const auto done = b.block("done");
    b.setInsert(entry);
    b.setLoc("test.cu:1");
    const auto i = b.mov(b.imm(0));
    b.br(loop);
    b.setInsert(loop);
    b.iaddTo(i, i, b.imm(1));
    const auto v =
        b.atomicCas(MemSpace::Shared, b.imm(0), b.imm(0), b.imm(7));
    (void)v;
    const auto c = b.ilt(i, b.imm(10));
    b.brc(c, loop, done);
    b.setInsert(done);
    b.barrier();
    b.ret();

    const auto text = printModule(mod);
    const auto res = parseModule(text);
    ASSERT_TRUE(res.ok) << res.error << "\n" << text;
    EXPECT_EQ(printModule(res.module), text);
}

TEST(Parser, PreservesSourceLocations)
{
    const char* text = R"(
kernel @k params 0 regs 4 shared 0 local 0 {
entry:
    r0 = tid @"file.cu:42"
    ret
}
)";
    const auto res = parseModule(text);
    ASSERT_TRUE(res.ok) << res.error;
    const auto& in = res.module.function(0).blocks[0].instrs[0];
    EXPECT_EQ(res.module.locString(in.loc), "file.cu:42");
}

TEST(Parser, AtomicMnemonics)
{
    const char* text = R"(
kernel @k params 1 regs 8 shared 64 local 0 {
entry:
    r1 = atom.add.f32.global r0, r0
    r2 = atom.cas.i32.shared r1, r1, r1
    ret
}
)";
    const auto res = parseModule(text);
    ASSERT_TRUE(res.ok) << res.error;
    const auto& instrs = res.module.function(0).blocks[0].instrs;
    EXPECT_EQ(instrs[0].atom, AtomicOp::AddF32);
    EXPECT_EQ(instrs[0].space, MemSpace::Global);
    EXPECT_EQ(instrs[1].atom, AtomicOp::Cas);
    EXPECT_EQ(instrs[1].nops, 3);
}

TEST(Parser, RejectsUnknownMnemonic)
{
    const auto res = parseModule(
        "kernel @k params 0 regs 2 shared 0 local 0 {\nentry:\n"
        "    r0 = frobnicate r1\n    ret\n}\n");
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("frobnicate"), std::string::npos);
}

TEST(Parser, RejectsUnknownLabel)
{
    const auto res = parseModule(
        "kernel @k params 0 regs 2 shared 0 local 0 {\nentry:\n"
        "    br nowhere\n}\n");
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("nowhere"), std::string::npos);
}

TEST(Parser, RejectsWrongOperandCount)
{
    const auto res = parseModule(
        "kernel @k params 0 regs 4 shared 0 local 0 {\nentry:\n"
        "    r0 = add.i32 r1\n    ret\n}\n");
    EXPECT_FALSE(res.ok);
}

TEST(Parser, RejectsMissingDest)
{
    const auto res = parseModule(
        "kernel @k params 0 regs 4 shared 0 local 0 {\nentry:\n"
        "    add.i32 r1, r2\n    ret\n}\n");
    EXPECT_FALSE(res.ok);
}

TEST(Parser, RejectsMissingBrace)
{
    const auto res = parseModule(
        "kernel @k params 0 regs 4 shared 0 local 0 {\nentry:\n    ret\n");
    EXPECT_FALSE(res.ok);
}

TEST(Parser, RejectsInstructionOutsideKernel)
{
    const auto res = parseModule("    r0 = tid\n");
    EXPECT_FALSE(res.ok);
}

TEST(Parser, ErrorsIncludeLineNumbers)
{
    const auto res = parseModule(
        "kernel @k params 0 regs 4 shared 0 local 0 {\nentry:\n"
        "    r0 = bogus\n    ret\n}\n");
    ASSERT_FALSE(res.ok);
    EXPECT_NE(res.error.find("line 3"), std::string::npos) << res.error;
}

TEST(Parser, NegativeAndHexImmediates)
{
    const auto res = parseModule(
        "kernel @k params 0 regs 8 shared 0 local 0 {\nentry:\n"
        "    r0 = mov -5\n    r1 = mov 0xff\n    ret\n}\n");
    ASSERT_TRUE(res.ok) << res.error;
    const auto& instrs = res.module.function(0).blocks[0].instrs;
    EXPECT_EQ(instrs[0].ops[0].value, -5);
    EXPECT_EQ(instrs[1].ops[0].value, 255);
}

} // namespace
} // namespace gevo::ir
