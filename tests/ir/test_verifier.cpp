#include "ir/verifier.h"

#include <gtest/gtest.h>

#include "ir/builder.h"

namespace gevo::ir {
namespace {

Module
validModule()
{
    Module mod;
    IRBuilder b(mod);
    b.startKernel("k", 1);
    const auto entry = b.block("entry");
    const auto exit = b.block("exit");
    b.setInsert(entry);
    const auto t = b.tid();
    const auto c = b.ilt(t, b.imm(4));
    b.brc(c, exit, exit);
    b.setInsert(exit);
    b.ret();
    return mod;
}

TEST(Verifier, AcceptsValidModule)
{
    const auto mod = validModule();
    EXPECT_TRUE(verifyModule(mod).ok()) << verifyModule(mod).message();
}

TEST(Verifier, RejectsEmptyFunction)
{
    Module mod;
    Function fn;
    fn.name = "empty";
    mod.addFunction(std::move(fn));
    EXPECT_FALSE(verifyModule(mod).ok());
}

TEST(Verifier, RejectsEmptyBlock)
{
    auto mod = validModule();
    mod.function(0).blocks.push_back(BasicBlock{"orphan", {}});
    EXPECT_FALSE(verifyModule(mod).ok());
}

TEST(Verifier, RejectsMissingTerminator)
{
    auto mod = validModule();
    mod.function(0).blocks[1].instrs.pop_back(); // remove ret
    // Block now empty -> also caught; add a non-terminator to be precise.
    Instr in;
    in.op = Opcode::Tid;
    in.dest = 0;
    mod.function(0).blocks[1].instrs.push_back(in);
    EXPECT_FALSE(verifyModule(mod).ok());
}

TEST(Verifier, RejectsTerminatorMidBlock)
{
    auto mod = validModule();
    auto& instrs = mod.function(0).blocks[0].instrs;
    Instr retIn;
    retIn.op = Opcode::Ret;
    instrs.insert(instrs.begin(), retIn);
    EXPECT_FALSE(verifyModule(mod).ok());
}

TEST(Verifier, RejectsBadRegisterIndex)
{
    auto mod = validModule();
    mod.function(0).blocks[0].instrs[1].ops[0] = Operand::reg(9999);
    EXPECT_FALSE(verifyModule(mod).ok());
}

TEST(Verifier, RejectsBadDestination)
{
    auto mod = validModule();
    mod.function(0).blocks[0].instrs[0].dest = 12345;
    EXPECT_FALSE(verifyModule(mod).ok());
}

TEST(Verifier, RejectsBadLabel)
{
    auto mod = validModule();
    auto& brc = mod.function(0).blocks[0].instrs.back();
    brc.ops[1] = Operand::label(42);
    EXPECT_FALSE(verifyModule(mod).ok());
}

TEST(Verifier, RejectsLabelInValueSlot)
{
    auto mod = validModule();
    mod.function(0).blocks[0].instrs[1].ops[0] = Operand::label(0);
    EXPECT_FALSE(verifyModule(mod).ok());
}

TEST(Verifier, RejectsMemoryOpWithoutSpace)
{
    auto mod = validModule();
    auto& instrs = mod.function(0).blocks[0].instrs;
    Instr ld;
    ld.op = Opcode::Load;
    ld.dest = 0;
    ld.nops = 1;
    ld.ops[0] = Operand::imm(0);
    ld.width = MemWidth::I32; // space deliberately missing
    instrs.insert(instrs.begin(), ld);
    EXPECT_FALSE(verifyModule(mod).ok());
}

TEST(Verifier, RejectsMemoryAttributesOnAluOp)
{
    auto mod = validModule();
    mod.function(0).blocks[0].instrs[0].space = MemSpace::Shared;
    EXPECT_FALSE(verifyModule(mod).ok());
}

TEST(Verifier, RejectsWrongOperandCount)
{
    auto mod = validModule();
    mod.function(0).blocks[0].instrs[1].nops = 1;
    EXPECT_FALSE(verifyModule(mod).ok());
}

TEST(Verifier, CasRequiresThreeOperands)
{
    Module mod;
    IRBuilder b(mod);
    b.startKernel("k", 1, 64);
    b.block("entry");
    b.atomicCas(MemSpace::Shared, b.imm(0), b.imm(0), b.imm(1));
    b.ret();
    EXPECT_TRUE(verifyModule(mod).ok());
    mod.function(0).blocks[0].instrs[0].nops = 2;
    EXPECT_FALSE(verifyModule(mod).ok());
}

TEST(Verifier, MessageJoinsErrors)
{
    auto mod = validModule();
    mod.function(0).blocks[0].instrs[0].dest = 12345;
    mod.function(0).blocks[1].instrs.clear();
    const auto res = verifyModule(mod);
    EXPECT_FALSE(res.ok());
    EXPECT_GE(res.errors.size(), 2u);
    EXPECT_FALSE(res.message().empty());
}

} // namespace
} // namespace gevo::ir
