/// Copy-on-write variant compilation: detach accounting (a breeding
/// generation must clone O(touched functions), not O(offspring ×
/// functions)), and differential fuzz of the incremental VariantCompiler
/// against the full-copy reference pipeline (the GEVO_COMPILE_REF
/// oracle) — random edit lists must yield byte-identical modules and
/// identical ProgramSet content keys.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/fitness.h"
#include "core/params.h"
#include "core/population.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "mutation/patch.h"
#include "mutation/sampler.h"
#include "support/rng.h"

namespace gevo {
namespace {

/// Four kernels so the COW win is visible: an edit list touching one
/// function must leave the other three shared with the base.
constexpr const char* kFleet = R"(
kernel @alpha params 1 regs 16 shared 64 local 0 {
entry:
    r1 = tid
    r2 = add.i32 r1, 1
    r3 = mul.i32 r2, 2
    st.i32.global r0, r3
    br next
next:
    r4 = sub.i32 r3, 1
    st.i32.global r0, r4
    ret
}

kernel @beta params 1 regs 16 shared 0 local 0 {
entry:
    r1 = laneid
    r2 = mul.i32 r1, 3
    r3 = add.i32 r2, 7
    r4 = cvt.i32.i64 r3
    st.i32.global r0, r3
    ret
}

kernel @gamma params 1 regs 16 shared 128 local 0 {
entry:
    r1 = tid
    r2 = and r1, 15
    r3 = mov 0
    br loop
loop:
    r3 = add.i32 r3, r2
    r4 = cmp.lt.i32 r3, 40
    brc r4, loop, done
done:
    st.i32.global r0, r3
    ret
}

kernel @delta params 1 regs 16 shared 0 local 0 {
entry:
    r1 = bid
    r2 = ntid
    r3 = mul.i32 r1, r2
    r4 = add.i32 r3, 5
    st.i32.global r0, r4
    ret
}
)";

ir::Module
fleet()
{
    auto res = ir::parseModule(kFleet);
    EXPECT_TRUE(res.ok) << res.error;
    return std::move(res.module);
}

/// RAII compile-mode override so a GEVO_COMPILE_REF suite run keeps its
/// selection outside the guarded regions.
class CompileModeGuard {
  public:
    explicit CompileModeGuard(core::CompileMode mode)
        : previous_(core::compileMode())
    {
        core::setCompileMode(mode);
    }
    ~CompileModeGuard() { core::setCompileMode(previous_); }

  private:
    core::CompileMode previous_;
};

TEST(CowCompile, GenerationDetachesScaleWithTouchedNotOffspring)
{
    // Population::mutate reapplies each individual's full patch to sample
    // the next edit against the current variant. Pre-COW that deep-copied
    // every function for every offspring; now applyPatch may only detach
    // the functions its applied edits actually touch.
    const auto base = fleet();
    core::EvolutionParams params;
    params.populationSize = 16;
    params.generations = 1;
    core::Population pop(base, params);
    Rng rng(77);
    pop.seed(rng);

    std::size_t detaches = 0;
    std::size_t editBudget = 0;
    const int generations = 4;
    for (int g = 0; g < generations; ++g) {
        // Fake deterministic fitness so selection has something to sort.
        double ms = 1.0;
        for (auto& m : pop.members()) {
            m.fitness = core::FitnessResult::pass(ms);
            m.evaluated = true;
            ms += 1.0;
        }
        pop.sortByFitness();
        ir::Module::resetCowDetachCount();
        pop.breedNext(rng);
        detaches += ir::Module::cowDetachCount();
        // Each offspring is mutated at most once, and a patch detaches at
        // most one function per applied edit — so the per-generation edit
        // mass bounds the clone count.
        for (const auto& m : pop.members())
            editBudget += m.edits.size();
    }
    EXPECT_LE(detaches, editBudget);
    // And far under the old full-copy cost: every breed used to clone
    // every function of every reapplied patch.
    EXPECT_LT(detaches,
              static_cast<std::size_t>(generations) * pop.size() *
                  base.numFunctions());
}

TEST(CowCompile, ApplyPatchSharesLocTableWithBase)
{
    // Edits never intern new source locations, so the variant must share
    // the base's loc storage and the strings must read through.
    auto base = fleet();
    const auto id = base.internLoc("fleet.cu:1");
    mut::Edit e;
    e.kind = mut::EditKind::InstrDelete;
    e.srcUid = base.function(0).blocks[0].instrs[1].uid;
    const auto out = mut::applyPatch(base, {e});
    EXPECT_EQ(out.locString(id), "fleet.cu:1");
}

TEST(CowCompile, IncrementalMatchesReferenceOnRandomEditLists)
{
    // The fuzz oracle: for random edit lists (sampled against the
    // progressively patched module, exactly like Population::mutate), the
    // incremental COW pipeline and the full-copy reference pipeline must
    // agree on ok/failReason, produce byte-identical printed modules,
    // matching uid counters, and identical program content keys.
    const auto base = fleet();
    const core::VariantCompiler compiler(base);
    CompileModeGuard guard(core::CompileMode::Incremental);
    Rng rng(20260808);

    int nonEmpty = 0;
    for (int iter = 0; iter < 150; ++iter) {
        std::vector<mut::Edit> edits;
        const auto len = rng.below(5);
        for (std::uint64_t k = 0; k < len; ++k) {
            const auto cur = mut::applyPatch(base, edits);
            const auto e = mut::sampleEdit(cur, rng);
            if (!e)
                break;
            edits.push_back(*e);
        }
        if (!edits.empty())
            ++nonEmpty;

        const auto inc = compiler.compile(edits);
        const auto ref = core::compileVariant(base, edits);
        ASSERT_EQ(inc.ok, ref.ok) << "iter " << iter;
        EXPECT_EQ(inc.failReason, ref.failReason) << "iter " << iter;
        if (!inc.ok)
            continue;
        EXPECT_EQ(ir::printModule(inc.module), ir::printModule(ref.module))
            << "iter " << iter;
        EXPECT_EQ(inc.module.uidCounter(), ref.module.uidCounter())
            << "iter " << iter;
        EXPECT_EQ(inc.programs.contentKey(), ref.programs.contentKey())
            << "iter " << iter;
    }
    // The sweep must actually exercise edits, not degenerate to 150
    // empty lists.
    EXPECT_GT(nonEmpty, 90);
}

TEST(CowCompile, ReferenceModeFallsBackToFullPipeline)
{
    // GEVO_COMPILE_REF flips VariantCompiler::compile to the full-copy
    // oracle; the result must be indistinguishable either way.
    const auto base = fleet();
    const core::VariantCompiler compiler(base);
    Rng rng(5);
    std::vector<mut::Edit> edits;
    const auto e = mut::sampleEdit(base, rng);
    ASSERT_TRUE(e.has_value());
    edits.push_back(*e);

    core::CompiledVariant inc;
    core::CompiledVariant ref;
    {
        CompileModeGuard g(core::CompileMode::Incremental);
        inc = compiler.compile(edits);
    }
    {
        CompileModeGuard g(core::CompileMode::Reference);
        ref = compiler.compile(edits);
    }
    ASSERT_EQ(inc.ok, ref.ok);
    EXPECT_EQ(inc.failReason, ref.failReason);
    if (inc.ok) {
        EXPECT_EQ(ir::printModule(inc.module), ir::printModule(ref.module));
        EXPECT_EQ(inc.programs.contentKey(), ref.programs.contentKey());
    }
}

TEST(CowCompile, UntouchedProgramsAreSharedWithBaseSet)
{
    // The assembled variant must reuse the precompiled base Program
    // objects (pointer identity) everywhere the patch didn't reach —
    // that sharing is the compile-stage win the stage-split benchmark
    // measures.
    const auto base = fleet();
    const core::VariantCompiler compiler(base);
    CompileModeGuard guard(core::CompileMode::Incremental);

    // An edit confined to @gamma (function 2).
    mut::Edit e;
    e.kind = mut::EditKind::InstrDelete;
    e.srcUid = base.function(2).blocks[0].instrs[1].uid; // the and
    const auto cv = compiler.compile({e});
    ASSERT_TRUE(cv.ok) << cv.failReason;

    const auto baseline = compiler.compile({});
    ASSERT_TRUE(baseline.ok);
    EXPECT_EQ(baseline.programs.share(0).get(), cv.programs.share(0).get());
    EXPECT_EQ(baseline.programs.share(1).get(), cv.programs.share(1).get());
    EXPECT_NE(baseline.programs.share(2).get(), cv.programs.share(2).get());
    EXPECT_EQ(baseline.programs.share(3).get(), cv.programs.share(3).get());
}

} // namespace
} // namespace gevo
