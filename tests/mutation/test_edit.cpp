#include "mutation/edit.h"

#include <gtest/gtest.h>

namespace gevo::mut {
namespace {

Edit
sampleOpRepl()
{
    Edit e;
    e.kind = EditKind::OperandReplace;
    e.srcUid = 12;
    e.opIndex = 1;
    e.newOperand = ir::Operand::reg(7);
    return e;
}

TEST(Edit, EqualityIgnoresNewUid)
{
    Edit a = sampleOpRepl();
    Edit b = sampleOpRepl();
    b.newUid = 999;
    EXPECT_EQ(a, b);
    b.opIndex = 0;
    EXPECT_FALSE(a == b);
}

TEST(Edit, ToStringNamesKind)
{
    EXPECT_NE(sampleOpRepl().toString().find("oprepl"), std::string::npos);
    Edit d;
    d.kind = EditKind::InstrDelete;
    d.srcUid = 5;
    EXPECT_EQ(d.toString(), "delete(#5)");
}

TEST(Edit, SerializeDeserializeRoundTrip)
{
    std::vector<Edit> edits;
    {
        Edit e;
        e.kind = EditKind::InstrDelete;
        e.srcUid = 3;
        edits.push_back(e);
    }
    {
        Edit e;
        e.kind = EditKind::InstrCopy;
        e.srcUid = 4;
        e.dstUid = 9;
        e.newUid = (1ull << 63) | 77;
        edits.push_back(e);
    }
    {
        Edit e = sampleOpRepl();
        e.newOperand = ir::Operand::imm(-42);
        edits.push_back(e);
    }
    {
        Edit e;
        e.kind = EditKind::InstrSwap;
        e.srcUid = 11;
        e.dstUid = 13;
        edits.push_back(e);
    }

    const auto text = serializeEdits(edits);
    std::vector<Edit> parsed;
    ASSERT_TRUE(deserializeEdits(text, &parsed));
    ASSERT_EQ(parsed.size(), edits.size());
    for (std::size_t i = 0; i < edits.size(); ++i) {
        EXPECT_EQ(parsed[i], edits[i]) << "edit " << i;
        EXPECT_EQ(parsed[i].newUid, edits[i].newUid);
    }
}

TEST(Edit, DeserializeRejectsGarbage)
{
    std::vector<Edit> out;
    EXPECT_FALSE(deserializeEdits("not an edit line\n", &out));
    EXPECT_FALSE(deserializeEdits("frobnicate 1 2 3 r 4 5\n", &out));
}

TEST(Edit, DeserializeEmptyIsEmpty)
{
    std::vector<Edit> out;
    EXPECT_TRUE(deserializeEdits("", &out));
    EXPECT_TRUE(out.empty());
    EXPECT_TRUE(deserializeEdits("\n\n", &out));
    EXPECT_TRUE(out.empty());
}

} // namespace
} // namespace gevo::mut
