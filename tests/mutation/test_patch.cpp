#include "mutation/patch.h"

#include <gtest/gtest.h>

#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"

namespace gevo::mut {
namespace {

using ir::Module;
using ir::Opcode;
using ir::Operand;

Module
baseModule()
{
    auto res = ir::parseModule(R"(
kernel @k params 1 regs 16 shared 64 local 0 {
entry:
    r1 = tid
    r2 = add.i32 r1, 1
    r3 = mul.i32 r2, 2
    st.i32.global r0, r3
    br next
next:
    r4 = sub.i32 r3, 1
    st.i32.global r0, r4
    ret
}
)");
    EXPECT_TRUE(res.ok) << res.error;
    return std::move(res.module);
}

std::uint64_t
uidAt(const Module& mod, std::size_t block, std::size_t idx)
{
    return mod.function(0).blocks[block].instrs[idx].uid;
}

TEST(Patch, DeleteRemovesInstruction)
{
    const auto base = baseModule();
    Edit e;
    e.kind = EditKind::InstrDelete;
    e.srcUid = uidAt(base, 0, 1); // the add
    PatchStats stats;
    const auto out = applyPatch(base, {e}, &stats);
    EXPECT_EQ(stats.applied, 1u);
    EXPECT_EQ(out.function(0).blocks[0].instrs.size(), 4u);
    EXPECT_FALSE(out.function(0).findUid(e.srcUid).valid());
}

TEST(Patch, DeleteTerminatorIsSkipped)
{
    const auto base = baseModule();
    Edit e;
    e.kind = EditKind::InstrDelete;
    e.srcUid = uidAt(base, 0, 4); // the br
    PatchStats stats;
    const auto out = applyPatch(base, {e}, &stats);
    EXPECT_EQ(stats.applied, 0u);
    EXPECT_EQ(stats.skipped, 1u);
    EXPECT_EQ(out.instrCount(), base.instrCount());
}

TEST(Patch, DanglingUidIsSkippedSilently)
{
    const auto base = baseModule();
    Edit e;
    e.kind = EditKind::InstrDelete;
    e.srcUid = 987654;
    PatchStats stats;
    const auto out = applyPatch(base, {e}, &stats);
    EXPECT_EQ(stats.skipped, 1u);
    EXPECT_EQ(out.instrCount(), base.instrCount());
}

TEST(Patch, CopyInsertsCloneWithNewUid)
{
    const auto base = baseModule();
    Edit e;
    e.kind = EditKind::InstrCopy;
    e.srcUid = uidAt(base, 0, 1);
    e.dstUid = uidAt(base, 1, 0);
    e.newUid = (1ull << 63) | 42;
    const auto out = applyPatch(base, {e});
    const auto pos = out.function(0).findUid(e.newUid);
    ASSERT_TRUE(pos.valid());
    EXPECT_EQ(pos.block, 1);
    EXPECT_EQ(pos.index, 0);
    EXPECT_EQ(out.function(0).at(pos).op, Opcode::AddI32);
    // Original still present.
    EXPECT_TRUE(out.function(0).findUid(e.srcUid).valid());
}

TEST(Patch, MoveRelocatesInstruction)
{
    const auto base = baseModule();
    Edit e;
    e.kind = EditKind::InstrMove;
    e.srcUid = uidAt(base, 0, 2); // mul
    e.dstUid = uidAt(base, 1, 1); // store in next
    const auto out = applyPatch(base, {e});
    EXPECT_EQ(out.instrCount(), base.instrCount());
    const auto pos = out.function(0).findUid(e.srcUid);
    ASSERT_TRUE(pos.valid());
    EXPECT_EQ(pos.block, 1);
}

TEST(Patch, ReplaceOverwritesOperationKeepsPosition)
{
    const auto base = baseModule();
    Edit e;
    e.kind = EditKind::InstrReplace;
    e.srcUid = uidAt(base, 0, 1); // add
    e.dstUid = uidAt(base, 1, 0); // sub
    e.newUid = (1ull << 63) | 7;
    const auto out = applyPatch(base, {e});
    EXPECT_EQ(out.function(0).blocks[1].instrs[0].op, Opcode::AddI32);
    EXPECT_EQ(out.function(0).blocks[1].instrs[0].uid, e.newUid);
}

TEST(Patch, SwapExchangesOperations)
{
    const auto base = baseModule();
    Edit e;
    e.kind = EditKind::InstrSwap;
    e.srcUid = uidAt(base, 0, 1); // add
    e.dstUid = uidAt(base, 0, 2); // mul
    const auto out = applyPatch(base, {e});
    EXPECT_EQ(out.function(0).blocks[0].instrs[1].op, Opcode::MulI32);
    EXPECT_EQ(out.function(0).blocks[0].instrs[2].op, Opcode::AddI32);
}

TEST(Patch, OperandReplaceValueSlot)
{
    const auto base = baseModule();
    Edit e;
    e.kind = EditKind::OperandReplace;
    e.srcUid = uidAt(base, 0, 1);
    e.opIndex = 1;
    e.newOperand = Operand::imm(99);
    const auto out = applyPatch(base, {e});
    EXPECT_EQ(out.function(0).blocks[0].instrs[1].ops[1].value, 99);
}

TEST(Patch, OperandReplaceRejectsLabelInValueSlot)
{
    const auto base = baseModule();
    Edit e;
    e.kind = EditKind::OperandReplace;
    e.srcUid = uidAt(base, 0, 1);
    e.opIndex = 1;
    e.newOperand = Operand::label(1);
    PatchStats stats;
    applyPatch(base, {e}, &stats);
    EXPECT_EQ(stats.skipped, 1u);
}

TEST(Patch, OperandReplaceRejectsOutOfRangeRegister)
{
    const auto base = baseModule();
    Edit e;
    e.kind = EditKind::OperandReplace;
    e.srcUid = uidAt(base, 0, 1);
    e.opIndex = 0;
    e.newOperand = Operand::reg(500);
    PatchStats stats;
    applyPatch(base, {e}, &stats);
    EXPECT_EQ(stats.skipped, 1u);
}

TEST(Patch, OperandReplaceBranchLabel)
{
    const auto base = baseModule();
    Edit e;
    e.kind = EditKind::OperandReplace;
    e.srcUid = uidAt(base, 0, 4); // br next
    e.opIndex = 0;
    e.newOperand = Operand::label(0); // self loop
    const auto out = applyPatch(base, {e});
    EXPECT_EQ(out.function(0).blocks[0].terminator().ops[0].value, 0);
    EXPECT_TRUE(ir::verifyModule(out).ok());
}

TEST(Patch, EditsComposeAndLaterEditsSeeEarlierClones)
{
    const auto base = baseModule();
    Edit copy;
    copy.kind = EditKind::InstrCopy;
    copy.srcUid = uidAt(base, 0, 1);
    copy.dstUid = uidAt(base, 1, 0);
    copy.newUid = (1ull << 63) | 5;
    Edit tweak;
    tweak.kind = EditKind::OperandReplace;
    tweak.srcUid = copy.newUid; // references the clone
    tweak.opIndex = 1;
    tweak.newOperand = Operand::imm(123);
    PatchStats stats;
    const auto out = applyPatch(base, {copy, tweak}, &stats);
    EXPECT_EQ(stats.applied, 2u);
    const auto pos = out.function(0).findUid(copy.newUid);
    ASSERT_TRUE(pos.valid());
    EXPECT_EQ(out.function(0).at(pos).ops[1].value, 123);
}

TEST(Patch, DeleteThenReferenceBecomesNoOp)
{
    const auto base = baseModule();
    Edit del;
    del.kind = EditKind::InstrDelete;
    del.srcUid = uidAt(base, 0, 1);
    Edit tweak;
    tweak.kind = EditKind::OperandReplace;
    tweak.srcUid = del.srcUid;
    tweak.opIndex = 0;
    tweak.newOperand = Operand::imm(7);
    PatchStats stats;
    applyPatch(base, {del, tweak}, &stats);
    EXPECT_EQ(stats.applied, 1u);
    EXPECT_EQ(stats.skipped, 1u);
}

TEST(Patch, BaseModuleIsNeverModified)
{
    const auto base = baseModule();
    const auto before = ir::printModule(base);
    Edit e;
    e.kind = EditKind::InstrDelete;
    e.srcUid = uidAt(base, 0, 1);
    applyPatch(base, {e});
    EXPECT_EQ(ir::printModule(base), before);
}

TEST(Patch, CowSharesUntouchedFunctions)
{
    auto res = ir::parseModule(R"(
kernel @a params 1 regs 8 shared 0 local 0 {
entry:
    r1 = tid
    r2 = add.i32 r1, 1
    st.i32.global r0, r2
    ret
}

kernel @b params 1 regs 8 shared 0 local 0 {
entry:
    r1 = laneid
    r2 = mul.i32 r1, 2
    st.i32.global r0, r2
    ret
}

kernel @c params 1 regs 8 shared 0 local 0 {
entry:
    r1 = bid
    r2 = sub.i32 r1, 3
    st.i32.global r0, r2
    ret
}
)");
    ASSERT_TRUE(res.ok) << res.error;
    const auto& base = res.module;

    // An applied edit detaches exactly the one function it touches; the
    // others stay pointer-shared with the base.
    Edit e;
    e.kind = EditKind::InstrDelete;
    e.srcUid = base.function(1).blocks[0].instrs[1].uid; // @b's mul
    Module::resetCowDetachCount();
    const auto out = applyPatch(base, {e});
    EXPECT_EQ(Module::cowDetachCount(), 1u);
    EXPECT_EQ(out.functionPtr(0).get(), base.functionPtr(0).get());
    EXPECT_NE(out.functionPtr(1).get(), base.functionPtr(1).get());
    EXPECT_EQ(out.functionPtr(2).get(), base.functionPtr(2).get());

    // Skipped edits detach nothing: the variant is a pure pointer copy.
    Edit dangling;
    dangling.kind = EditKind::InstrDelete;
    dangling.srcUid = 987654;
    Module::resetCowDetachCount();
    const auto noop = applyPatch(base, {dangling});
    EXPECT_EQ(Module::cowDetachCount(), 0u);
    for (std::size_t i = 0; i < base.numFunctions(); ++i)
        EXPECT_EQ(noop.functionPtr(i).get(), base.functionPtr(i).get());

    // Two edits in the same function still cost one detach.
    Edit e2;
    e2.kind = EditKind::OperandReplace;
    e2.srcUid = base.function(1).blocks[0].instrs[1].uid;
    e2.opIndex = 1;
    e2.newOperand = Operand::imm(9);
    Edit e3;
    e3.kind = EditKind::OperandReplace;
    e3.srcUid = base.function(1).blocks[0].instrs[2].uid; // @b's store
    e3.opIndex = 1;
    e3.newOperand = Operand::reg(1);
    Module::resetCowDetachCount();
    applyPatch(base, {e2, e3});
    EXPECT_EQ(Module::cowDetachCount(), 1u);
}

TEST(Patch, StructuralEditsStayWithinOneKernel)
{
    auto res = ir::parseModule(R"(
kernel @a params 0 regs 4 shared 0 local 0 {
entry:
    r0 = tid
    ret
}

kernel @b params 0 regs 4 shared 0 local 0 {
entry:
    r0 = laneid
    ret
}
)");
    ASSERT_TRUE(res.ok);
    const auto& modBase = res.module;
    Edit e;
    e.kind = EditKind::InstrCopy;
    e.srcUid = modBase.function(0).blocks[0].instrs[0].uid;
    e.dstUid = modBase.function(1).blocks[0].instrs[0].uid;
    e.newUid = (1ull << 63) | 9;
    PatchStats stats;
    applyPatch(modBase, {e}, &stats);
    EXPECT_EQ(stats.skipped, 1u);
}

} // namespace
} // namespace gevo::mut
