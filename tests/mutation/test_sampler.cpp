#include "mutation/sampler.h"

#include <gtest/gtest.h>

#include <map>

#include "ir/parser.h"
#include "ir/verifier.h"
#include "mutation/patch.h"

namespace gevo::mut {
namespace {

ir::Module
baseModule()
{
    auto res = ir::parseModule(R"(
kernel @k params 2 regs 24 shared 128 local 0 {
entry:
    r2 = tid
    r3 = add.i32 r2, 1
    r4 = mul.i32 r3, 2
    r5 = cmp.lt.i32 r4, r1
    brc r5, body, done
body:
    r6 = cvt.i32.i64 r4
    r7 = mul.i64 r6, 4
    r8 = add.i64 r0, r7
    st.i32.global r8, r4
    br done
done:
    ret
}
)");
    EXPECT_TRUE(res.ok) << res.error;
    return std::move(res.module);
}

TEST(Sampler, ProducesApplicableEdits)
{
    const auto base = baseModule();
    Rng rng(7);
    int applied = 0;
    for (int i = 0; i < 300; ++i) {
        const auto edit = sampleEdit(base, rng);
        ASSERT_TRUE(edit.has_value());
        ir::Module variant = base.clone();
        if (applyEdit(variant, *edit))
            ++applied;
    }
    // Nearly all sampled edits must be applicable (the sampler samples
    // from the live module; only no-op operand replacements may skip).
    EXPECT_GT(applied, 250);
}

TEST(Sampler, PatchedVariantsAreStructurallyValid)
{
    const auto base = baseModule();
    Rng rng(21);
    for (int i = 0; i < 300; ++i) {
        const auto edit = sampleEdit(base, rng);
        ASSERT_TRUE(edit.has_value());
        const auto variant = applyPatch(base, {*edit});
        EXPECT_TRUE(ir::verifyModule(variant).ok())
            << edit->toString() << "\n"
            << ir::verifyModule(variant).message();
    }
}

TEST(Sampler, CoversAllEditKinds)
{
    const auto base = baseModule();
    Rng rng(3);
    std::map<EditKind, int> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto edit = sampleEdit(base, rng);
        ASSERT_TRUE(edit.has_value());
        ++seen[edit->kind];
    }
    EXPECT_EQ(seen.size(), 6u);
    for (const auto& [kind, count] : seen)
        EXPECT_GT(count, 20) << editKindName(kind);
}

TEST(Sampler, DeterministicGivenSeed)
{
    const auto base = baseModule();
    Rng a(99);
    Rng b(99);
    for (int i = 0; i < 100; ++i) {
        const auto ea = sampleEdit(base, a);
        const auto eb = sampleEdit(base, b);
        ASSERT_TRUE(ea.has_value());
        ASSERT_TRUE(eb.has_value());
        EXPECT_TRUE(*ea == *eb) << i;
        EXPECT_EQ(ea->newUid, eb->newUid);
    }
}

TEST(Sampler, StructuralEditsNeverTargetTerminators)
{
    const auto base = baseModule();
    Rng rng(17);
    for (int i = 0; i < 1000; ++i) {
        const auto edit = sampleEdit(base, rng);
        ASSERT_TRUE(edit.has_value());
        if (edit->kind == EditKind::OperandReplace)
            continue;
        const auto pos = base.function(0).findUid(edit->srcUid);
        if (pos.valid()) {
            EXPECT_FALSE(base.function(0).at(pos).isTerminator())
                << edit->toString();
        }
    }
}

TEST(Sampler, OperandReplaceRespectsSlotKinds)
{
    const auto base = baseModule();
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const auto edit = sampleEdit(base, rng);
        ASSERT_TRUE(edit.has_value());
        if (edit->kind != EditKind::OperandReplace)
            continue;
        const auto pos = base.function(0).findUid(edit->srcUid);
        ASSERT_TRUE(pos.valid());
        const auto& in = base.function(0).at(pos);
        const bool labelSlot =
            (in.op == ir::Opcode::Br && edit->opIndex == 0) ||
            (in.op == ir::Opcode::CondBr &&
             (edit->opIndex == 1 || edit->opIndex == 2));
        EXPECT_EQ(labelSlot, edit->newOperand.isLabel())
            << edit->toString();
    }
}

TEST(Crossover, PreservesTotalEditCount)
{
    Rng rng(11);
    std::vector<Edit> a(5);
    std::vector<Edit> b(3);
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i].srcUid = 100 + i;
    for (std::size_t i = 0; i < b.size(); ++i)
        b[i].srcUid = 200 + i;
    const auto [c1, c2] = crossoverEdits(a, b, rng);
    EXPECT_EQ(c1.size() + c2.size(), a.size() + b.size());
}

TEST(Crossover, ChildrenArePrefixSuffixCombinations)
{
    Rng rng(13);
    std::vector<Edit> a(4);
    std::vector<Edit> b(4);
    for (std::size_t i = 0; i < 4; ++i) {
        a[i].srcUid = 100 + i;
        b[i].srcUid = 200 + i;
    }
    for (int trial = 0; trial < 50; ++trial) {
        const auto [c1, c2] = crossoverEdits(a, b, rng);
        // c1 must be a (possibly empty) prefix of a followed by a suffix
        // of b.
        std::size_t k = 0;
        while (k < c1.size() && c1[k].srcUid >= 100 && c1[k].srcUid < 200)
            ++k;
        for (std::size_t m = k; m < c1.size(); ++m)
            EXPECT_GE(c1[m].srcUid, 200u);
    }
}

TEST(Crossover, EmptyParentsYieldEmptyChildren)
{
    Rng rng(1);
    const auto [c1, c2] = crossoverEdits({}, {}, rng);
    EXPECT_TRUE(c1.empty());
    EXPECT_TRUE(c2.empty());
}

} // namespace
} // namespace gevo::mut
