#include "mutation/sampler.h"

#include <gtest/gtest.h>

#include <map>

#include "ir/parser.h"
#include "ir/verifier.h"
#include "mutation/patch.h"

namespace gevo::mut {
namespace {

ir::Module
baseModule()
{
    auto res = ir::parseModule(R"(
kernel @k params 2 regs 24 shared 128 local 0 {
entry:
    r2 = tid
    r3 = add.i32 r2, 1
    r4 = mul.i32 r3, 2
    r5 = cmp.lt.i32 r4, r1
    brc r5, body, done
body:
    r6 = cvt.i32.i64 r4
    r7 = mul.i64 r6, 4
    r8 = add.i64 r0, r7
    st.i32.global r8, r4
    br done
done:
    ret
}
)");
    EXPECT_TRUE(res.ok) << res.error;
    return std::move(res.module);
}

TEST(Sampler, ProducesApplicableEdits)
{
    const auto base = baseModule();
    Rng rng(7);
    int applied = 0;
    for (int i = 0; i < 300; ++i) {
        const auto edit = sampleEdit(base, rng);
        ASSERT_TRUE(edit.has_value());
        ir::Module variant = base.clone();
        if (applyEdit(variant, *edit))
            ++applied;
    }
    // Nearly all sampled edits must be applicable (the sampler samples
    // from the live module; only no-op operand replacements may skip).
    EXPECT_GT(applied, 250);
}

TEST(Sampler, PatchedVariantsAreStructurallyValid)
{
    const auto base = baseModule();
    Rng rng(21);
    for (int i = 0; i < 300; ++i) {
        const auto edit = sampleEdit(base, rng);
        ASSERT_TRUE(edit.has_value());
        const auto variant = applyPatch(base, {*edit});
        EXPECT_TRUE(ir::verifyModule(variant).ok())
            << edit->toString() << "\n"
            << ir::verifyModule(variant).message();
    }
}

TEST(Sampler, CoversAllEditKinds)
{
    const auto base = baseModule();
    Rng rng(3);
    std::map<EditKind, int> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto edit = sampleEdit(base, rng);
        ASSERT_TRUE(edit.has_value());
        ++seen[edit->kind];
    }
    EXPECT_EQ(seen.size(), 6u);
    for (const auto& [kind, count] : seen)
        EXPECT_GT(count, 20) << editKindName(kind);
}

TEST(Sampler, DeterministicGivenSeed)
{
    const auto base = baseModule();
    Rng a(99);
    Rng b(99);
    for (int i = 0; i < 100; ++i) {
        const auto ea = sampleEdit(base, a);
        const auto eb = sampleEdit(base, b);
        ASSERT_TRUE(ea.has_value());
        ASSERT_TRUE(eb.has_value());
        EXPECT_TRUE(*ea == *eb) << i;
        EXPECT_EQ(ea->newUid, eb->newUid);
    }
}

TEST(Sampler, StructuralEditsNeverTargetTerminators)
{
    const auto base = baseModule();
    Rng rng(17);
    for (int i = 0; i < 1000; ++i) {
        const auto edit = sampleEdit(base, rng);
        ASSERT_TRUE(edit.has_value());
        if (edit->kind == EditKind::OperandReplace)
            continue;
        const auto pos = base.function(0).findUid(edit->srcUid);
        if (pos.valid()) {
            EXPECT_FALSE(base.function(0).at(pos).isTerminator())
                << edit->toString();
        }
    }
}

TEST(Sampler, OperandReplaceRespectsSlotKinds)
{
    const auto base = baseModule();
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const auto edit = sampleEdit(base, rng);
        ASSERT_TRUE(edit.has_value());
        if (edit->kind != EditKind::OperandReplace)
            continue;
        const auto pos = base.function(0).findUid(edit->srcUid);
        ASSERT_TRUE(pos.valid());
        const auto& in = base.function(0).at(pos);
        const bool labelSlot =
            (in.op == ir::Opcode::Br && edit->opIndex == 0) ||
            (in.op == ir::Opcode::CondBr &&
             (edit->opIndex == 1 || edit->opIndex == 2));
        EXPECT_EQ(labelSlot, edit->newOperand.isLabel())
            << edit->toString();
    }
}

// The uniform seam must reproduce the free-function draw sequence
// bit-for-bit: the engine swaps `sampleEdit` for `UniformSampler` on the
// default path, so any divergence here forks every historical trajectory.
TEST(Sampler, UniformSamplerMatchesSampleEditExactly)
{
    const auto base = baseModule();
    const UniformSampler sampler;
    const SamplerConfig cfg;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        Rng a(seed);
        Rng b(seed);
        ir::Module variant = base.clone();
        for (int i = 0; i < 200; ++i) {
            const auto ea = sampleEdit(variant, a, cfg);
            const auto eb = sampler.sample(variant, b, cfg);
            ASSERT_EQ(ea.has_value(), eb.has_value()) << seed << ":" << i;
            if (!ea)
                continue;
            ASSERT_TRUE(*ea == *eb) << seed << ":" << i;
            ASSERT_EQ(ea->newUid, eb->newUid) << seed << ":" << i;
            // Both RNGs must sit at the identical state — equal edits
            // from different draw counts would still fork the search.
            ASSERT_EQ(a.state(), b.state()) << seed << ":" << i;
            // Fuzz against evolving genotypes, not just the base: walk
            // the variant forward with every 10th sampled edit.
            if (i % 10 == 9)
                applyEdit(variant, *ea);
        }
    }
}

ir::Module
locModule()
{
    // Two basic blocks of mutable instructions: four at a "hot" source
    // loc, four at a "cold" one, plus unattributed control flow.
    auto res = ir::parseModule(R"(
kernel @k params 2 regs 24 shared 0 local 0 {
entry:
    r2 = tid @"hot.cu:10"
    r3 = add.i32 r2, 1 @"hot.cu:10"
    r4 = mul.i32 r3, 2 @"hot.cu:11"
    r5 = add.i32 r4, 3 @"hot.cu:11"
    r6 = mul.i32 r5, 5 @"cold.cu:40"
    r7 = add.i32 r6, 7 @"cold.cu:40"
    r8 = mul.i32 r7, 9 @"cold.cu:41"
    r9 = add.i32 r8, 11 @"cold.cu:41"
    ret
}
)");
    EXPECT_TRUE(res.ok) << res.error;
    return std::move(res.module);
}

/// Issue histogram that marks every loc whose name starts with "hot" as
/// hot and leaves the rest cold.
std::vector<std::uint64_t>
hotProfile(const ir::Module& mod)
{
    std::vector<std::uint64_t> issues;
    for (std::size_t f = 0; f < mod.numFunctions(); ++f) {
        const auto& fn = mod.function(f);
        for (const auto& bb : fn.blocks) {
            for (const auto& in : bb.instrs) {
                if (in.loc >= issues.size())
                    issues.resize(in.loc + 1, 0);
                if (mod.locString(in.loc).rfind("hot", 0) == 0)
                    issues[in.loc] = 1000;
            }
        }
    }
    return issues;
}

/// Fraction of sampled edits that anchor on a hot-loc instruction.
double
hotFraction(const ir::Module& mod, const MutationSampler& sampler,
            const SamplerConfig& cfg, int draws)
{
    Rng rng(42);
    int hot = 0;
    int attributed = 0;
    for (int i = 0; i < draws; ++i) {
        const auto edit = sampler.sample(mod, rng, cfg);
        if (!edit)
            continue;
        const auto pos = mod.function(0).findUid(edit->srcUid);
        if (!pos.valid())
            continue;
        const auto loc = mod.function(0).at(pos).loc;
        if (loc == 0)
            continue;
        ++attributed;
        if (mod.locString(loc).rfind("hot", 0) == 0)
            ++hot;
    }
    EXPECT_GT(attributed, draws / 2);
    return static_cast<double>(hot) / static_cast<double>(attributed);
}

TEST(GuidedSampler, BiasesEditSitesTowardHotLocs)
{
    const auto mod = locModule();
    ProfileGuidedSampler guided;
    guided.setProfile(hotProfile(mod));
    ASSERT_TRUE(guided.hasProfile());

    SamplerConfig cfg;
    cfg.exploreFloor = 0.25;
    const double guidedHot = hotFraction(mod, guided, cfg, 4000);
    const double uniformHot =
        hotFraction(mod, UniformSampler{}, cfg, 4000);
    // Half the mutable instructions are hot, so uniform sits near 0.5;
    // with floor 0.25 the hot sites carry weight 1.0 vs 0.25, i.e. an
    // expected hot share of 0.8. Demand a clear separation.
    EXPECT_GT(guidedHot, uniformHot + 0.15);
    EXPECT_GT(guidedHot, 0.6);
}

TEST(GuidedSampler, FloorOfOneDegeneratesToUniformDistribution)
{
    const auto mod = locModule();
    ProfileGuidedSampler guided;
    guided.setProfile(hotProfile(mod));

    SamplerConfig cfg;
    cfg.exploreFloor = 1.0;
    const double guidedHot = hotFraction(mod, guided, cfg, 4000);
    const double uniformHot =
        hotFraction(mod, UniformSampler{}, cfg, 4000);
    EXPECT_NEAR(guidedHot, uniformHot, 0.05);
}

TEST(GuidedSampler, ExplorationFloorKeepsColdSitesAlive)
{
    const auto mod = locModule();
    ProfileGuidedSampler guided;
    guided.setProfile(hotProfile(mod));

    SamplerConfig cfg;
    cfg.exploreFloor = 0.25;
    // Cold sites must still be sampled (floor > 0): expected cold share
    // is 0.25/1.25 = 0.2 of attributed picks.
    const double guidedHot = hotFraction(mod, guided, cfg, 4000);
    EXPECT_LT(guidedHot, 0.95);
}

TEST(GuidedSampler, NoProfileBehavesLikeUniformSiteSelection)
{
    const auto mod = locModule();
    const ProfileGuidedSampler guided;
    ASSERT_FALSE(guided.hasProfile());
    const SamplerConfig cfg;
    const double guidedHot = hotFraction(mod, guided, cfg, 4000);
    const double uniformHot =
        hotFraction(mod, UniformSampler{}, cfg, 4000);
    EXPECT_NEAR(guidedHot, uniformHot, 0.05);
}

TEST(SamplerConfigDeathTest, NegativeWeightIsFatal)
{
    SamplerConfig cfg;
    cfg.wMove = -0.1;
    EXPECT_DEATH(cfg.validate(), "move");
}

TEST(SamplerConfigDeathTest, AllZeroWeightsAreFatal)
{
    SamplerConfig cfg;
    cfg.wDelete = cfg.wCopy = cfg.wMove = 0.0;
    cfg.wReplace = cfg.wSwap = cfg.wOperand = 0.0;
    EXPECT_DEATH(cfg.validate(), "zero");
}

TEST(SamplerConfigDeathTest, ExploreFloorOutsideUnitIntervalIsFatal)
{
    SamplerConfig cfg;
    cfg.exploreFloor = 1.5;
    EXPECT_DEATH(cfg.validate(), "exploreFloor");
}

TEST(Crossover, PreservesTotalEditCount)
{
    Rng rng(11);
    std::vector<Edit> a(5);
    std::vector<Edit> b(3);
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i].srcUid = 100 + i;
    for (std::size_t i = 0; i < b.size(); ++i)
        b[i].srcUid = 200 + i;
    const auto [c1, c2] = crossoverEdits(a, b, rng);
    EXPECT_EQ(c1.size() + c2.size(), a.size() + b.size());
}

TEST(Crossover, ChildrenArePrefixSuffixCombinations)
{
    Rng rng(13);
    std::vector<Edit> a(4);
    std::vector<Edit> b(4);
    for (std::size_t i = 0; i < 4; ++i) {
        a[i].srcUid = 100 + i;
        b[i].srcUid = 200 + i;
    }
    for (int trial = 0; trial < 50; ++trial) {
        const auto [c1, c2] = crossoverEdits(a, b, rng);
        // c1 must be a (possibly empty) prefix of a followed by a suffix
        // of b.
        std::size_t k = 0;
        while (k < c1.size() && c1[k].srcUid >= 100 && c1[k].srcUid < 200)
            ++k;
        for (std::size_t m = k; m < c1.size(); ++m)
            EXPECT_GE(c1[m].srcUid, 200u);
    }
}

TEST(Crossover, EmptyParentsYieldEmptyChildren)
{
    Rng rng(1);
    const auto [c1, c2] = crossoverEdits({}, {}, rng);
    EXPECT_TRUE(c1.empty());
    EXPECT_TRUE(c2.empty());
}

} // namespace
} // namespace gevo::mut
