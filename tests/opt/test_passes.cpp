#include "opt/passes.h"

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"

namespace gevo::opt {
namespace {

using ir::MemSpace;
using ir::MemWidth;
using ir::Module;
using ir::Opcode;
using ir::Operand;
using ir::parseModule;

ir::Function
parseFn(const char* text)
{
    auto res = parseModule(text);
    EXPECT_TRUE(res.ok) << res.error;
    return res.module.function(0);
}

// ---------------- DCE ----------------

TEST(Dce, RemovesUnusedPureInstr)
{
    auto fn = parseFn(R"(
kernel @k params 1 regs 8 shared 0 local 0 {
entry:
    r1 = add.i32 r0, 1
    r2 = mul.i32 r0, 3
    st.i32.global r0, r2
    ret
}
)");
    EXPECT_TRUE(runDce(fn));
    EXPECT_EQ(fn.instrCount(), 3u); // the add is gone
    EXPECT_TRUE(verifyFunction(fn).ok());
}

TEST(Dce, KeepsStoresAndBarriers)
{
    auto fn = parseFn(R"(
kernel @k params 1 regs 8 shared 64 local 0 {
entry:
    st.i32.shared r0, 5
    bar.sync
    ret
}
)");
    EXPECT_FALSE(runDce(fn));
    EXPECT_EQ(fn.instrCount(), 3u);
}

TEST(Dce, RemovesDeadLoadButNotItsStoreSibling)
{
    auto fn = parseFn(R"(
kernel @k params 1 regs 8 shared 0 local 0 {
entry:
    r1 = ld.i32.global r0
    st.i32.global r0, 7
    ret
}
)");
    EXPECT_TRUE(runDce(fn));
    EXPECT_EQ(fn.instrCount(), 2u);
}

TEST(Dce, CascadesThroughChains)
{
    auto fn = parseFn(R"(
kernel @k params 1 regs 8 shared 0 local 0 {
entry:
    r1 = add.i32 r0, 1
    r2 = add.i32 r1, 1
    r3 = add.i32 r2, 1
    ret
}
)");
    EXPECT_TRUE(runDce(fn));
    EXPECT_EQ(fn.instrCount(), 1u); // only ret remains
}

TEST(Dce, KeepsValueFeedingBranch)
{
    auto fn = parseFn(R"(
kernel @k params 1 regs 8 shared 0 local 0 {
entry:
    r1 = cmp.lt.i32 r0, 5
    brc r1, a, b
a:
    br b
b:
    ret
}
)");
    EXPECT_FALSE(runDce(fn));
}

TEST(Dce, RemovesDeadShuffleAndBallot)
{
    auto fn = parseFn(R"(
kernel @k params 1 regs 8 shared 0 local 0 {
entry:
    r1 = activemask
    r2 = shfl.up r1, r0, 1
    r3 = ballot r1, r0
    st.i32.global r0, r0
    ret
}
)");
    EXPECT_TRUE(runDce(fn));
    EXPECT_EQ(fn.instrCount(), 2u);
}

// ---------------- constant folding ----------------

TEST(ConstantFold, FoldsAllImmediateAlu)
{
    auto fn = parseFn(R"(
kernel @k params 1 regs 8 shared 0 local 0 {
entry:
    r1 = add.i32 2, 3
    st.i32.global r0, r1
    ret
}
)");
    EXPECT_TRUE(runConstantFold(fn));
    const auto& in = fn.blocks[0].instrs[0];
    EXPECT_EQ(in.op, Opcode::Mov);
    EXPECT_EQ(in.ops[0].value, 5);
}

TEST(ConstantFold, FoldsCondBrOnImmediate)
{
    auto fn = parseFn(R"(
kernel @k params 0 regs 8 shared 0 local 0 {
entry:
    brc 0, a, b
a:
    br b
b:
    ret
}
)");
    EXPECT_TRUE(runConstantFold(fn));
    const auto& term = fn.blocks[0].terminator();
    EXPECT_EQ(term.op, Opcode::Br);
    EXPECT_EQ(term.ops[0].value, 2); // the false target (block b)
}

TEST(ConstantFold, FoldsSelectOnImmediate)
{
    auto fn = parseFn(R"(
kernel @k params 1 regs 8 shared 0 local 0 {
entry:
    r1 = select 1, r0, 99
    st.i32.global r0, r1
    ret
}
)");
    EXPECT_TRUE(runConstantFold(fn));
    const auto& in = fn.blocks[0].instrs[0];
    EXPECT_EQ(in.op, Opcode::Mov);
    EXPECT_TRUE(in.ops[0].isReg());
}

TEST(ConstantFold, LeavesRegisterOpsAlone)
{
    auto fn = parseFn(R"(
kernel @k params 2 regs 8 shared 0 local 0 {
entry:
    r2 = add.i32 r0, r1
    st.i32.global r0, r2
    ret
}
)");
    EXPECT_FALSE(runConstantFold(fn));
}

TEST(ConstantFold, MatchesInterpreterSemantics)
{
    // div-by-zero folds to 0, exactly like the executor's evalScalar.
    auto fn = parseFn(R"(
kernel @k params 1 regs 8 shared 0 local 0 {
entry:
    r1 = div.i32 7, 0
    st.i32.global r0, r1
    ret
}
)");
    EXPECT_TRUE(runConstantFold(fn));
    EXPECT_EQ(fn.blocks[0].instrs[0].ops[0].value, 0);
}

// ---------------- simplify-cfg ----------------

TEST(SimplifyCfg, CollapsesSameTargetCondBr)
{
    auto fn = parseFn(R"(
kernel @k params 1 regs 8 shared 0 local 0 {
entry:
    r1 = cmp.lt.i32 r0, 5
    brc r1, join, join
join:
    ret
}
)");
    EXPECT_TRUE(runSimplifyCfg(fn));
    // The CondBr becomes a Br, which then merges the two blocks into one
    // straight line ending in ret; no conditional branch survives.
    EXPECT_EQ(fn.blocks.size(), 1u);
    EXPECT_EQ(fn.blocks[0].terminator().op, Opcode::Ret);
    for (const auto& in : fn.blocks[0].instrs)
        EXPECT_NE(in.op, Opcode::CondBr);
}

TEST(SimplifyCfg, RemovesUnreachableBlocks)
{
    auto fn = parseFn(R"(
kernel @k params 0 regs 8 shared 0 local 0 {
entry:
    br exit
orphan:
    r0 = mov 7
    br exit
exit:
    ret
}
)");
    EXPECT_TRUE(runSimplifyCfg(fn));
    EXPECT_EQ(fn.blocks.size(), 1u); // orphan removed, exit merged in
    EXPECT_TRUE(verifyFunction(fn).ok()) << verifyFunction(fn).message();
}

TEST(SimplifyCfg, MergesStraightLineBlocks)
{
    auto fn = parseFn(R"(
kernel @k params 1 regs 8 shared 0 local 0 {
entry:
    r1 = add.i32 r0, 1
    br mid
mid:
    r2 = add.i32 r1, 1
    br tail
tail:
    st.i32.global r0, r2
    ret
}
)");
    EXPECT_TRUE(runSimplifyCfg(fn));
    EXPECT_EQ(fn.blocks.size(), 1u);
    EXPECT_EQ(fn.instrCount(), 4u);
    EXPECT_TRUE(verifyFunction(fn).ok());
}

TEST(SimplifyCfg, KeepsLoops)
{
    auto fn = parseFn(R"(
kernel @k params 0 regs 8 shared 0 local 0 {
entry:
    r0 = mov 0
    br header
header:
    r0 = add.i32 r0, 1
    r1 = cmp.lt.i32 r0, 10
    brc r1, header, exit
exit:
    ret
}
)");
    runSimplifyCfg(fn);
    // Loop header has two predecessors; it must survive.
    EXPECT_GE(fn.blocks.size(), 2u);
    EXPECT_TRUE(verifyFunction(fn).ok());
}

// ---------------- full pipeline ----------------

TEST(Pipeline, BranchConditionReplacementKillsWholeCheckChain)
{
    // This is the Sec VI-D shape: a chain of compares feeding a branch.
    // Replacing the branch condition with an immediate (one OperandReplace
    // edit) must let the pipeline delete the compares, the branch, and the
    // skipped block.
    auto fn = parseFn(R"(
kernel @k params 2 regs 16 shared 0 local 0 {
entry:
    r2 = cmp.ge.i32 r0, 0
    r3 = cmp.lt.i32 r0, 100
    r4 = and r2, r3
    brc r4, inbounds, skip
inbounds:
    st.i32.global r1, 42
    br skip
skip:
    ret
}
)");
    // Simulate the OperandReplace edit: branch condition <- imm 1.
    fn.blocks[0].instrs.back().ops[0] = Operand::imm(1);
    runCleanupPipeline(fn);
    EXPECT_TRUE(verifyFunction(fn).ok());
    // One straight-line block: store + ret; compare chain gone.
    EXPECT_EQ(fn.blocks.size(), 1u);
    EXPECT_EQ(fn.instrCount(), 2u);
}

TEST(Pipeline, LoopBranchConditionZeroRemovesLoop)
{
    // The ADEPT-V0 Sec VI-C shape: replacing the memset-loop branch
    // condition with false must erase the whole loop body.
    auto fn = parseFn(R"(
kernel @k params 1 regs 16 shared 256 local 0 {
entry:
    r1 = mov 0
    br header
header:
    r2 = cmp.lt.i32 r1, 64
    brc r2, body, exit
body:
    r3 = mul.i32 r1, 4
    st.i32.shared r3, 0
    r1 = add.i32 r1, 1
    br header
exit:
    st.i32.global r0, r1
    ret
}
)");
    // Simulate the OperandReplace edit on the loop branch.
    fn.blocks[1].instrs.back().ops[0] = Operand::imm(0);
    runCleanupPipeline(fn);
    EXPECT_TRUE(verifyFunction(fn).ok());
    bool hasSharedStore = false;
    for (const auto& bb : fn.blocks)
        for (const auto& in : bb.instrs)
            hasSharedStore =
                hasSharedStore || (in.op == Opcode::Store &&
                                   in.space == MemSpace::Shared);
    EXPECT_FALSE(hasSharedStore);
    EXPECT_LE(fn.blocks.size(), 2u);
}

TEST(Pipeline, IdempotentOnCleanCode)
{
    auto fn = parseFn(R"(
kernel @k params 2 regs 16 shared 0 local 0 {
entry:
    r2 = tid
    r3 = cvt.i32.i64 r2
    r4 = mul.i64 r3, 4
    r5 = add.i64 r0, r4
    r6 = ld.f32.global r5
    r7 = add.f32 r6, 1.0f
    st.f32.global r5, r7
    ret
}
)");
    const auto before = ir::printFunction(fn);
    runCleanupPipeline(fn);
    EXPECT_EQ(ir::printFunction(fn), before);
}

TEST(Pipeline, ModuleOverloadTouchesAllKernels)
{
    auto res = parseModule(R"(
kernel @a params 1 regs 8 shared 0 local 0 {
entry:
    r1 = add.i32 1, 2
    st.i32.global r0, r1
    ret
}

kernel @b params 1 regs 8 shared 0 local 0 {
entry:
    r1 = add.i32 3, 4
    st.i32.global r0, r1
    ret
}
)");
    ASSERT_TRUE(res.ok) << res.error;
    runCleanupPipeline(res.module);
    EXPECT_EQ(res.module.function(0).blocks[0].instrs[0].op, Opcode::Mov);
    EXPECT_EQ(res.module.function(1).blocks[0].instrs[0].op, Opcode::Mov);
}

} // namespace
} // namespace gevo::opt
