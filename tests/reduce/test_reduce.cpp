/// Reduction workload: CPU reference properties, kernel-vs-reference
/// differential (exact integer sums), golden-edit expectations, and
/// trace-vs-refpath interpreter agreement (the shfl/ballot path).

#include <gtest/gtest.h>

#include "apps/reduce/driver.h"
#include "apps/reduce/kernels.h"
#include "core/fitness.h"
#include "ir/verifier.h"
#include "sim/device_config.h"

#include "../sim/sim_test_util.h"

namespace gevo::reduce {
namespace {

ReduceConfig
smallConfig()
{
    ReduceConfig cfg;
    cfg.elems = 1024;
    cfg.inputs = 2;
    return cfg;
}

TEST(ReduceCpu, PartialsSumToTotalAndDatasetsDiffer)
{
    const auto cfg = smallConfig();
    const auto in0 = makeInput(cfg, 0);
    const auto in1 = makeInput(cfg, 1);
    EXPECT_NE(in0, in1);

    const auto partials = cpuPartials(cfg, in0);
    ASSERT_EQ(partials.size(),
              static_cast<std::size_t>(cfg.numBlocks()));
    std::uint32_t sum = 0;
    for (const auto p : partials)
        sum += p;
    EXPECT_EQ(sum, cpuTotal(in0));
    EXPECT_GT(cpuTotal(in0), 0u);
}

TEST(ReduceKernels, ModuleVerifies)
{
    const auto built = buildReduce(smallConfig());
    const auto res = ir::verifyModule(built.module);
    EXPECT_TRUE(res.ok()) << res.message();
    EXPECT_EQ(built.module.numFunctions(), 2u);
}

TEST(ReduceKernels, GpuMatchesCpuExactly)
{
    const auto cfg = smallConfig();
    const auto built = buildReduce(cfg);
    const ReduceDriver driver(cfg);
    const auto out = driver.run(built.module, sim::p100());
    ASSERT_TRUE(out.ok()) << out.fault.detail;
    ASSERT_EQ(out.totals.size(), static_cast<std::size_t>(cfg.inputs));
    for (std::size_t d = 0; d < out.totals.size(); ++d) {
        EXPECT_EQ(out.partials[d], driver.expectedPartials()[d])
            << "dataset " << d;
        EXPECT_EQ(out.totals[d], driver.expectedTotals()[d])
            << "dataset " << d;
    }
}

TEST(ReduceGolden, AllEditsPassAndSpeedUp)
{
    const auto cfg = smallConfig();
    const auto built = buildReduce(cfg);
    const ReduceDriver driver(cfg);
    const ReduceFitness fitness(driver, sim::p100());

    const auto baseline =
        core::evaluateVariant(built.module, {}, fitness);
    ASSERT_TRUE(baseline.valid) << baseline.failReason;

    const auto golden = core::evaluateVariant(
        built.module, editsOf(allGoldenEdits(built)), fitness);
    ASSERT_TRUE(golden.valid) << golden.failReason;
    EXPECT_LT(golden.ms(), baseline.ms());

    for (const auto& named : allGoldenEdits(built)) {
        const auto one =
            core::evaluateVariant(built.module, {named.edit}, fitness);
        EXPECT_TRUE(one.valid) << named.name << ": " << one.failReason;
        EXPECT_LE(one.ms(), baseline.ms()) << named.name;
    }
}

/// The planted guards are removable; the reduction's data flow is not. A
/// mutant that reroutes the second element load to the wrong base array
/// (the output pointer, register r1) still runs fault-free but sums the
/// wrong values — the exact-sum check must reject it.
TEST(ReduceGolden, WrongRerouteIsInvalid)
{
    const auto cfg = smallConfig();
    const auto built = buildReduce(cfg);
    const ReduceDriver driver(cfg);
    const ReduceFitness fitness(driver, sim::p100());

    mut::Edit e;
    e.kind = mut::EditKind::OperandReplace;
    e.srcUid = built.uidOf("rdp.second.load");
    e.opIndex = 0;
    e.newOperand = ir::Operand::reg(1);
    const auto r = core::evaluateVariant(built.module, {e}, fitness);
    EXPECT_FALSE(r.valid);
}

TEST(ReduceSim, TraceAndReferenceInterpretersAgree)
{
    const auto cfg = smallConfig();
    const auto built = buildReduce(cfg);
    const ReduceDriver driver(cfg);
    ReduceRunOutput trace;
    ReduceRunOutput ref;
    {
        sim::testutil::InterpModeGuard g(sim::InterpMode::Trace);
        trace = driver.run(built.module, sim::p100(), true);
    }
    {
        sim::testutil::InterpModeGuard g(sim::InterpMode::Reference);
        ref = driver.run(built.module, sim::p100(), true);
    }
    ASSERT_TRUE(trace.ok());
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(trace.totalMs, ref.totalMs);
    EXPECT_EQ(trace.totals, ref.totals);
    EXPECT_EQ(trace.partials, ref.partials);
    sim::testutil::expectStatsEqual(trace.aggregate, ref.aggregate);
}

TEST(ReduceSim, DensePackingPreservesProfiledCounters)
{
    // The tree reduction halves the active mask every level — the
    // densest sparse-mask workload in the suite. Profiled counters must
    // be identical with packing on and off.
    const auto cfg = smallConfig();
    const auto built = buildReduce(cfg);
    const ReduceDriver driver(cfg);
    sim::testutil::InterpModeGuard m(sim::InterpMode::Trace);
    ReduceRunOutput dense;
    ReduceRunOutput legacy;
    {
        sim::testutil::DenseLaneGuard g(true);
        dense = driver.run(built.module, sim::p100(), true);
    }
    {
        sim::testutil::DenseLaneGuard g(false);
        legacy = driver.run(built.module, sim::p100(), true);
    }
    ASSERT_TRUE(dense.ok());
    ASSERT_TRUE(legacy.ok());
    EXPECT_EQ(dense.totalMs, legacy.totalMs);
    EXPECT_EQ(dense.totals, legacy.totals);
    EXPECT_EQ(dense.partials, legacy.partials);
    sim::testutil::expectStatsEqual(dense.aggregate, legacy.aggregate);
}

} // namespace
} // namespace gevo::reduce
