/// \file
/// Helpers shared by the simulator test suites: parse a kernel, run it on a
/// device, and inspect memory.

#ifndef GEVO_TESTS_SIM_TEST_UTIL_H
#define GEVO_TESTS_SIM_TEST_UTIL_H

#include <gtest/gtest.h>

#include <vector>

#include "ir/parser.h"
#include "ir/verifier.h"
#include "sim/device_config.h"
#include "sim/device_memory.h"
#include "sim/executor.h"
#include "sim/program.h"

namespace gevo::sim::testutil {

/// RAII interpreter-mode override; restores the previous mode on exit
/// (so a GEVO_SIM_REFPATH=1 suite run keeps its selection outside the
/// guarded regions). Shared by the differential suites.
class InterpModeGuard {
  public:
    explicit InterpModeGuard(InterpMode mode) : previous_(interpreterMode())
    {
        setInterpreterMode(mode);
    }
    ~InterpModeGuard() { setInterpreterMode(previous_); }

    InterpModeGuard(const InterpModeGuard&) = delete;
    InterpModeGuard& operator=(const InterpModeGuard&) = delete;

  private:
    InterpMode previous_;
};

/// RAII dense-lane-mode override; restores the previous setting on exit
/// (so a GEVO_SIM_DENSE=0 suite run keeps its selection outside the
/// guarded regions).
class DenseLaneGuard {
  public:
    explicit DenseLaneGuard(bool on) : previous_(denseLaneMode())
    {
        setDenseLaneMode(on);
    }
    ~DenseLaneGuard() { setDenseLaneMode(previous_); }

    DenseLaneGuard(const DenseLaneGuard&) = delete;
    DenseLaneGuard& operator=(const DenseLaneGuard&) = delete;

  private:
    bool previous_;
};

/// Bit-identical LaunchStats comparison — shared by every differential
/// suite (trace-vs-reference micro-kernels, app drivers, workload tests)
/// so a new counter only has to be added here, not in each copy.
inline void
expectStatsEqual(const LaunchStats& a, const LaunchStats& b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ms, b.ms); // bit-identical, not approximately
    EXPECT_EQ(a.warpInstrs, b.warpInstrs);
    EXPECT_EQ(a.laneInstrs, b.laneInstrs);
    EXPECT_EQ(a.issueCycles, b.issueCycles);
    EXPECT_EQ(a.divergences, b.divergences);
    EXPECT_EQ(a.barriers, b.barriers);
    EXPECT_EQ(a.sharedConflictWays, b.sharedConflictWays);
    EXPECT_EQ(a.globalSectors, b.globalSectors);
    EXPECT_EQ(a.occupancyBlocks, b.occupancyBlocks);
    EXPECT_EQ(a.locIssues, b.locIssues);
}

/// Parse one kernel from text, verifying structure.
inline Program
compile(const char* text)
{
    auto res = ir::parseModule(text);
    EXPECT_TRUE(res.ok) << res.error;
    const auto verify = ir::verifyModule(res.module);
    EXPECT_TRUE(verify.ok()) << verify.message();
    return Program::decode(res.module.function(0));
}

/// Run a kernel and expect success.
inline LaunchResult
run(const Program& prog, DeviceMemory& mem, LaunchDims dims,
    std::vector<std::uint64_t> args = {},
    const DeviceConfig& dev = p100(), bool profile = false)
{
    auto result = launchKernel(dev, mem, prog, dims, args, profile);
    EXPECT_TRUE(result.ok()) << result.fault.detail;
    return result;
}

/// Run a kernel and expect a specific fault kind.
inline LaunchResult
runExpectFault(const Program& prog, DeviceMemory& mem, LaunchDims dims,
               FaultKind kind, std::vector<std::uint64_t> args = {},
               const DeviceConfig& dev = p100())
{
    auto result = launchKernel(dev, mem, prog, dims, args);
    EXPECT_EQ(result.fault.kind, kind) << result.fault.detail;
    return result;
}

} // namespace gevo::sim::testutil

#endif // GEVO_TESTS_SIM_TEST_UTIL_H
