/// Opt-in block-level parallelism (LaunchDims::blockThreads): a fault-free
/// parallel launch must be bit-for-bit identical to the serial one —
/// memory effects, timing, and every stats counter — and a faulting one
/// must report the same (lowest-block) fault.

#include <gtest/gtest.h>

#include "sim_test_util.h"

namespace gevo::sim {
namespace {

using testutil::compile;

/// Each thread writes f(global tid) to its own slot; blocks also diverge
/// on lane parity and loop a little so the divergence/latency counters
/// are non-trivial.
constexpr const char* kDisjointKernel = R"(
kernel @par params 1 regs 24 shared 256 local 0 {
entry:
    r1 = tid
    r2 = bid
    r3 = ntid
    r4 = mul.i32 r2, r3
    r5 = add.i32 r4, r1
    r6 = and r1, 1
    brc r6, odd, even
odd:
    r7 = mul.i32 r5, 3
    br store
even:
    r7 = mul.i32 r5, 5
    br store
store:
    r8 = mov 0
    br loop
loop:
    r9 = mul.i32 r8, 4
    r10 = cvt.i32.i64 r9
    st.i32.shared r10, 0
    r8 = add.i32 r8, 1
    r11 = cmp.lt.i32 r8, 8
    brc r11, loop, out
out:
    r12 = cvt.i32.i64 r5
    r13 = mul.i64 r12, 4
    r14 = add.i64 r0, r13
    st.i32.global r14, r7
    ret
}
)";

/// Blocks at index >= 5 store to an unmapped address (the fault block is
/// data-dependent on bid, like the Sec VI-D held-out segfault).
constexpr const char* kFaultyKernel = R"(
kernel @faulty params 1 regs 16 shared 0 local 0 {
entry:
    r1 = bid
    r2 = cmp.lt.i32 r1, 5
    brc r2, good, bad
bad:
    r3 = mov 1
    r4 = cvt.i32.i64 r3
    r5 = mul.i64 r4, 1073741824
    st.i32.global r5, 7
    ret
good:
    r6 = tid
    r7 = cvt.i32.i64 r6
    r8 = mul.i64 r7, 4
    r9 = add.i64 r0, r8
    st.i32.global r9, r6
    ret
}
)";

void
expectSameStats(const LaunchResult& serial, const LaunchResult& parallel)
{
    EXPECT_DOUBLE_EQ(serial.stats.ms, parallel.stats.ms);
    EXPECT_EQ(serial.stats.cycles, parallel.stats.cycles);
    EXPECT_EQ(serial.stats.warpInstrs, parallel.stats.warpInstrs);
    EXPECT_EQ(serial.stats.laneInstrs, parallel.stats.laneInstrs);
    EXPECT_EQ(serial.stats.issueCycles, parallel.stats.issueCycles);
    EXPECT_EQ(serial.stats.divergences, parallel.stats.divergences);
    EXPECT_EQ(serial.stats.barriers, parallel.stats.barriers);
    EXPECT_EQ(serial.stats.sharedConflictWays,
              parallel.stats.sharedConflictWays);
    EXPECT_EQ(serial.stats.globalSectors, parallel.stats.globalSectors);
    EXPECT_EQ(serial.stats.occupancyBlocks, parallel.stats.occupancyBlocks);
    ASSERT_EQ(serial.stats.locIssues.size(), parallel.stats.locIssues.size());
    for (std::size_t i = 0; i < serial.stats.locIssues.size(); ++i)
        EXPECT_EQ(serial.stats.locIssues[i], parallel.stats.locIssues[i]);
}

TEST(BlockParallel, MatchesSerialBitForBit)
{
    const auto prog = compile(kDisjointKernel);
    constexpr std::uint32_t kGrid = 16;
    constexpr std::uint32_t kBlock = 64;

    for (const bool profile : {false, true}) {
        DeviceMemory serialMem(1 << 20);
        const auto serialOut = serialMem.alloc(4ll * kGrid * kBlock);
        const auto serial = launchKernel(
            p100(), serialMem, prog, {kGrid, kBlock, 4, 1},
            {static_cast<std::uint64_t>(serialOut)}, profile);
        ASSERT_TRUE(serial.ok()) << serial.fault.detail;

        for (const std::uint32_t threads : {2u, 3u, 8u, 64u}) {
            DeviceMemory parMem(1 << 20);
            const auto parOut = parMem.alloc(4ll * kGrid * kBlock);
            const auto parallel = launchKernel(
                p100(), parMem, prog, {kGrid, kBlock, 4, threads},
                {static_cast<std::uint64_t>(parOut)}, profile);
            ASSERT_TRUE(parallel.ok()) << parallel.fault.detail;
            expectSameStats(serial, parallel);
            for (std::uint32_t i = 0; i < kGrid * kBlock; ++i) {
                ASSERT_EQ(serialMem.read<std::int32_t>(serialOut + 4ll * i),
                          parMem.read<std::int32_t>(parOut + 4ll * i))
                    << "slot " << i;
            }
        }
    }
}

TEST(BlockParallel, FunctionalResultsAreCorrect)
{
    const auto prog = compile(kDisjointKernel);
    DeviceMemory mem(1 << 20);
    const auto out = mem.alloc(4ll * 8 * 32);
    const auto res = launchKernel(p100(), mem, prog, {8, 32, 1, 4},
                                  {static_cast<std::uint64_t>(out)});
    ASSERT_TRUE(res.ok()) << res.fault.detail;
    for (std::int32_t i = 0; i < 8 * 32; ++i) {
        const std::int32_t want = (i % 2) ? i * 3 : i * 5;
        EXPECT_EQ(mem.read<std::int32_t>(out + 4ll * i), want);
    }
}

TEST(BlockParallel, ReportsTheLowestFaultingBlock)
{
    const auto prog = compile(kFaultyKernel);

    DeviceMemory serialMem(1 << 16);
    const auto serialOut = serialMem.alloc(4 * 32);
    const auto serial =
        launchKernel(p100(), serialMem, prog, {12, 32, 1, 1},
                     {static_cast<std::uint64_t>(serialOut)});
    ASSERT_FALSE(serial.ok());
    EXPECT_EQ(serial.fault.kind, FaultKind::MemOobGlobal);

    for (const std::uint32_t threads : {2u, 4u, 12u}) {
        DeviceMemory parMem(1 << 16);
        const auto parOut = parMem.alloc(4 * 32);
        const auto parallel =
            launchKernel(p100(), parMem, prog, {12, 32, 1, threads},
                         {static_cast<std::uint64_t>(parOut)});
        ASSERT_FALSE(parallel.ok());
        // Identical fault, including the "block 5" in the detail text —
        // the lowest faulting block wins regardless of scheduling.
        EXPECT_EQ(parallel.fault.kind, serial.fault.kind);
        EXPECT_EQ(parallel.fault.detail, serial.fault.detail);
    }
}

TEST(BlockParallel, MoreThreadsThanBlocksIsFine)
{
    const auto prog = compile(kDisjointKernel);
    DeviceMemory mem(1 << 20);
    const auto out = mem.alloc(4ll * 2 * 32);
    const auto res = launchKernel(p100(), mem, prog, {2, 32, 1, 16},
                                  {static_cast<std::uint64_t>(out)});
    EXPECT_TRUE(res.ok()) << res.fault.detail;
}

} // namespace
} // namespace gevo::sim
