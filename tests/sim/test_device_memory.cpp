#include "sim/device_memory.h"

#include <gtest/gtest.h>

namespace gevo::sim {
namespace {

TEST(DeviceMemory, AllocationsAreAlignedAndDisjoint)
{
    DeviceMemory mem(1 << 20);
    const auto a = mem.alloc(100);
    const auto b = mem.alloc(100);
    EXPECT_EQ(a % DeviceMemory::kAlign, 0);
    EXPECT_EQ(b % DeviceMemory::kAlign, 0);
    EXPECT_GE(b, a + 100);
}

TEST(DeviceMemory, TypedHostAccessRoundTrips)
{
    DeviceMemory mem(1 << 16);
    const auto p = mem.alloc(64);
    mem.write<float>(p, 2.5f);
    mem.write<std::int32_t>(p + 4, -7);
    EXPECT_FLOAT_EQ(mem.read<float>(p), 2.5f);
    EXPECT_EQ(mem.read<std::int32_t>(p + 4), -7);
}

TEST(DeviceMemory, MappedEndIsPageRounded)
{
    DeviceMemory mem(1 << 20);
    mem.alloc(100); // used = 256 after alignment
    EXPECT_EQ(mem.mappedEnd(), DeviceMemory::kPage);
    mem.alloc(DeviceMemory::kPage);
    EXPECT_EQ(mem.mappedEnd(), 2 * DeviceMemory::kPage);
}

TEST(DeviceMemory, SmallOverrunPastLastAllocationIsMapped)
{
    // The Sec VI-D mechanism: a boundary-check-free stencil reads a few
    // hundred bytes past its grid. Within the page slack that is mapped...
    DeviceMemory mem(1 << 20);
    const auto grid = mem.alloc(100 * 4);
    EXPECT_TRUE(mem.mapped(grid + 100 * 4 + 128, 4));
}

TEST(DeviceMemory, LargeOverrunFaults)
{
    // ...but past the page-rounded extent it is not (the "large grid
    // segfault").
    DeviceMemory mem(1 << 20);
    const auto grid = mem.alloc(100 * 4);
    EXPECT_FALSE(mem.mapped(grid + DeviceMemory::kPage + 8, 4));
}

TEST(DeviceMemory, NegativeAddressesNeverMapped)
{
    DeviceMemory mem(1 << 16);
    EXPECT_FALSE(mem.mapped(-4, 4));
    EXPECT_FALSE(mem.mapped(-1, 1));
}

TEST(DeviceMemory, ResetZeroesAndReclaims)
{
    DeviceMemory mem(1 << 16);
    const auto p = mem.alloc(16);
    mem.write<std::int32_t>(p, 42);
    mem.reset();
    EXPECT_EQ(mem.used(), 0);
    const auto q = mem.alloc(16);
    EXPECT_EQ(q, p);
    EXPECT_EQ(mem.read<std::int32_t>(q), 0);
}

TEST(DeviceMemory, ArenaStartsZeroed)
{
    DeviceMemory mem(4096);
    const auto p = mem.alloc(64);
    for (int i = 0; i < 64; i += 4)
        EXPECT_EQ(mem.read<std::int32_t>(p + i), 0);
}

} // namespace
} // namespace gevo::sim
