#include <gtest/gtest.h>

#include "sim_test_util.h"

namespace gevo::sim {
namespace {

using testutil::compile;
using testutil::run;

// Each thread writes tid*3+5 to out[tid].
constexpr const char* kAluKernel = R"(
kernel @alu params 1 regs 16 shared 0 local 0 {
entry:
    r1 = tid
    r2 = mul.i32 r1, 3
    r3 = add.i32 r2, 5
    r4 = cvt.i32.i64 r1
    r5 = mul.i64 r4, 4
    r6 = add.i64 r0, r5
    st.i32.global r6, r3
    ret
}
)";

TEST(ExecutorAlu, PerLaneArithmetic)
{
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(64 * 4);
    const auto prog = compile(kAluKernel);
    run(prog, mem, {1, 64}, {static_cast<std::uint64_t>(out)});
    for (int t = 0; t < 64; ++t)
        EXPECT_EQ(mem.read<std::int32_t>(out + t * 4), t * 3 + 5);
}

TEST(ExecutorAlu, GridOfBlocksGetsDistinctBids)
{
    constexpr const char* text = R"(
kernel @bids params 1 regs 16 shared 0 local 0 {
entry:
    r1 = bid
    r2 = tid
    r3 = ntid
    r4 = mul.i32 r1, r3
    r5 = add.i32 r4, r2
    r6 = cvt.i32.i64 r5
    r7 = mul.i64 r6, 4
    r8 = add.i64 r0, r7
    st.i32.global r8, r1
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(8 * 32 * 4);
    const auto prog = compile(text);
    run(prog, mem, {8, 32}, {static_cast<std::uint64_t>(out)});
    for (int b = 0; b < 8; ++b)
        for (int t = 0; t < 32; ++t)
            EXPECT_EQ(mem.read<std::int32_t>(out + (b * 32 + t) * 4), b);
}

TEST(ExecutorAlu, SpecialRegisters)
{
    constexpr const char* text = R"(
kernel @sregs params 1 regs 16 shared 0 local 0 {
entry:
    r1 = tid
    r2 = laneid
    r3 = warpid
    r4 = nbid
    r5 = mul.i32 r3, 1000
    r6 = add.i32 r5, r2
    r7 = mul.i32 r4, 100000
    r8 = add.i32 r6, r7
    r9 = cvt.i32.i64 r1
    r10 = mul.i64 r9, 4
    r11 = add.i64 r0, r10
    st.i32.global r11, r8
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(96 * 4);
    const auto prog = compile(text);
    run(prog, mem, {2, 96}, {static_cast<std::uint64_t>(out)});
    for (int t = 0; t < 96; ++t) {
        const int expect = (t / 32) * 1000 + (t % 32) + 2 * 100000;
        EXPECT_EQ(mem.read<std::int32_t>(out + t * 4), expect);
    }
}

TEST(ExecutorAlu, FloatPipeline)
{
    constexpr const char* text = R"(
kernel @fp params 2 regs 16 shared 0 local 0 {
entry:
    r2 = tid
    r3 = cvt.i32.i64 r2
    r4 = mul.i64 r3, 4
    r5 = add.i64 r0, r4
    r6 = ld.f32.global r5
    r7 = mul.f32 r6, 2.0f
    r8 = add.f32 r7, 0.5f
    r9 = add.i64 r1, r4
    st.f32.global r9, r8
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto in = mem.alloc(32 * 4);
    const auto out = mem.alloc(32 * 4);
    for (int i = 0; i < 32; ++i)
        mem.write<float>(in + i * 4, static_cast<float>(i) * 0.25f);
    const auto prog = compile(text);
    run(prog, mem, {1, 32},
        {static_cast<std::uint64_t>(in), static_cast<std::uint64_t>(out)});
    for (int i = 0; i < 32; ++i)
        EXPECT_FLOAT_EQ(mem.read<float>(out + i * 4), i * 0.5f + 0.5f);
}

TEST(ExecutorAlu, RegistersStartAtZero)
{
    constexpr const char* text = R"(
kernel @zero params 1 regs 16 shared 0 local 0 {
entry:
    r2 = tid
    r3 = cvt.i32.i64 r2
    r4 = mul.i64 r3, 4
    r5 = add.i64 r0, r4
    st.i32.global r5, r9   ; r9 never written: must read as 0
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(32 * 4);
    mem.write<std::int32_t>(out, -1);
    const auto prog = compile(text);
    run(prog, mem, {1, 32}, {static_cast<std::uint64_t>(out)});
    EXPECT_EQ(mem.read<std::int32_t>(out), 0);
}

TEST(ExecutorAlu, PartialLastWarpOnlyRunsLiveLanes)
{
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(64 * 4);
    const auto prog = compile(kAluKernel);
    run(prog, mem, {1, 40}, {static_cast<std::uint64_t>(out)});
    for (int t = 0; t < 40; ++t)
        EXPECT_EQ(mem.read<std::int32_t>(out + t * 4), t * 3 + 5);
    for (int t = 40; t < 64; ++t)
        EXPECT_EQ(mem.read<std::int32_t>(out + t * 4), 0);
}

TEST(ExecutorAlu, SelectPerLane)
{
    constexpr const char* text = R"(
kernel @sel params 1 regs 16 shared 0 local 0 {
entry:
    r1 = tid
    r2 = rem.i32 r1, 2
    r3 = cmp.eq.i32 r2, 0
    r4 = select r3, 100, 200
    r5 = cvt.i32.i64 r1
    r6 = mul.i64 r5, 4
    r7 = add.i64 r0, r6
    st.i32.global r7, r4
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(32 * 4);
    const auto prog = compile(text);
    run(prog, mem, {1, 32}, {static_cast<std::uint64_t>(out)});
    for (int t = 0; t < 32; ++t)
        EXPECT_EQ(mem.read<std::int32_t>(out + t * 4),
                  t % 2 == 0 ? 100 : 200);
}

} // namespace
} // namespace gevo::sim
