#include <gtest/gtest.h>

#include "sim_test_util.h"

namespace gevo::sim {
namespace {

using testutil::compile;
using testutil::run;

TEST(ExecutorControl, DivergentIfElseBothPathsApply)
{
    // Even lanes write 1, odd lanes write 2; reconvergence then writes a
    // +10 for everyone.
    constexpr const char* text = R"(
kernel @diverge params 1 regs 16 shared 0 local 0 {
entry:
    r1 = tid
    r2 = rem.i32 r1, 2
    r3 = cmp.eq.i32 r2, 0
    r4 = cvt.i32.i64 r1
    r5 = mul.i64 r4, 4
    r6 = add.i64 r0, r5
    brc r3, even, odd
even:
    st.i32.global r6, 1
    br join
odd:
    st.i32.global r6, 2
    br join
join:
    r7 = ld.i32.global r6
    r8 = add.i32 r7, 10
    st.i32.global r6, r8
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(64 * 4);
    const auto prog = compile(text);
    const auto res = run(prog, mem, {1, 64},
                         {static_cast<std::uint64_t>(out)});
    for (int t = 0; t < 64; ++t)
        EXPECT_EQ(mem.read<std::int32_t>(out + t * 4),
                  t % 2 == 0 ? 11 : 12);
    EXPECT_GT(res.stats.divergences, 0u);
}

TEST(ExecutorControl, UniformBranchDoesNotDiverge)
{
    constexpr const char* text = R"(
kernel @uniform params 1 regs 16 shared 0 local 0 {
entry:
    r1 = tid
    r2 = cmp.ge.i32 r1, 0
    brc r2, yes, no
yes:
    br join
no:
    br join
join:
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto prog = compile(text);
    const auto res = run(prog, mem, {1, 64}, {0});
    EXPECT_EQ(res.stats.divergences, 0u);
}

TEST(ExecutorControl, LoopWithPerLaneTripCounts)
{
    // Lane t iterates t+1 times, accumulating. Divergent loop exit.
    constexpr const char* text = R"(
kernel @loop params 1 regs 16 shared 0 local 0 {
entry:
    r1 = tid
    r2 = mov 0
    r3 = mov 0
    br header
header:
    r4 = cmp.le.i32 r2, r1
    brc r4, body, exit
body:
    r3 = add.i32 r3, 2
    r2 = add.i32 r2, 1
    br header
exit:
    r5 = cvt.i32.i64 r1
    r6 = mul.i64 r5, 4
    r7 = add.i64 r0, r6
    st.i32.global r7, r3
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(64 * 4);
    const auto prog = compile(text);
    run(prog, mem, {1, 48}, {static_cast<std::uint64_t>(out)});
    for (int t = 0; t < 48; ++t)
        EXPECT_EQ(mem.read<std::int32_t>(out + t * 4), 2 * (t + 1));
}

TEST(ExecutorControl, NestedDivergenceReconverges)
{
    constexpr const char* text = R"(
kernel @nested params 1 regs 24 shared 0 local 0 {
entry:
    r1 = tid
    r2 = rem.i32 r1, 4
    r3 = cmp.lt.i32 r2, 2
    r4 = cvt.i32.i64 r1
    r5 = mul.i64 r4, 4
    r6 = add.i64 r0, r5
    brc r3, low, high
low:
    r7 = cmp.eq.i32 r2, 0
    brc r7, lowA, lowB
lowA:
    st.i32.global r6, 100
    br lowJ
lowB:
    st.i32.global r6, 101
    br lowJ
lowJ:
    br join
high:
    st.i32.global r6, 200
    br join
join:
    r8 = ld.i32.global r6
    r9 = add.i32 r8, 1
    st.i32.global r6, r9
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(32 * 4);
    const auto prog = compile(text);
    run(prog, mem, {1, 32}, {static_cast<std::uint64_t>(out)});
    for (int t = 0; t < 32; ++t) {
        const int m = t % 4;
        const int expect = m == 0 ? 101 : m == 1 ? 102 : 201;
        EXPECT_EQ(mem.read<std::int32_t>(out + t * 4), expect)
            << "thread " << t;
    }
}

TEST(ExecutorControl, EarlyRetUnderDivergence)
{
    // Half the warp returns early; the rest still complete.
    constexpr const char* text = R"(
kernel @earlyret params 1 regs 16 shared 0 local 0 {
entry:
    r1 = tid
    r2 = cmp.lt.i32 r1, 16
    brc r2, quit, work
quit:
    ret
work:
    r3 = cvt.i32.i64 r1
    r4 = mul.i64 r3, 4
    r5 = add.i64 r0, r4
    st.i32.global r5, 7
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(32 * 4);
    const auto prog = compile(text);
    run(prog, mem, {1, 32}, {static_cast<std::uint64_t>(out)});
    for (int t = 0; t < 32; ++t)
        EXPECT_EQ(mem.read<std::int32_t>(out + t * 4), t < 16 ? 0 : 7);
}

TEST(ExecutorControl, WavefrontPattern)
{
    // A two-phase pattern as in Smith-Waterman: threads wait for their
    // left neighbour's value via shared memory across barriers.
    constexpr const char* text = R"(
kernel @wave params 2 regs 24 shared 512 local 0 {
entry:
    r2 = tid
    r3 = mov 0
    r4 = mov 0
    br diag
diag:
    ; value = left neighbour's previous value + 1 when tid <= diag
    r5 = cmp.le.i32 r2, r3
    brc r5, active, skip
active:
    r6 = sub.i32 r2, 1
    r7 = mul.i32 r6, 4
    r8 = cvt.i32.i64 r7
    r9 = cmp.eq.i32 r2, 0
    brc r9, base, readleft
base:
    r4 = mov 1
    br wrote
readleft:
    r10 = ld.i32.shared r8
    r4 = add.i32 r10, 1
    br wrote
wrote:
    br skip
skip:
    bar.sync
    r11 = mul.i32 r2, 4
    r12 = cvt.i32.i64 r11
    st.i32.shared r12, r4
    bar.sync
    r3 = add.i32 r3, 1
    r13 = cmp.lt.i32 r3, 64
    brc r13, diag, done
done:
    r14 = cvt.i32.i64 r2
    r15 = mul.i64 r14, 4
    r16 = add.i64 r0, r15
    st.i32.global r16, r4
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(64 * 4);
    const auto prog = compile(text);
    run(prog, mem, {1, 64}, {static_cast<std::uint64_t>(out), 0});
    // After 64 diagonals thread t has value t+1 (prefix chain).
    for (int t = 0; t < 64; ++t)
        EXPECT_EQ(mem.read<std::int32_t>(out + t * 4), t + 1)
            << "thread " << t;
}

} // namespace
} // namespace gevo::sim
