#include <gtest/gtest.h>

#include "sim_test_util.h"

namespace gevo::sim {
namespace {

using testutil::compile;
using testutil::run;

TEST(ExecutorMemory, WidthsAndExtensions)
{
    constexpr const char* text = R"(
kernel @widths params 2 regs 24 shared 0 local 0 {
entry:
    r2 = ld.i8.global r0      ; sign-extended
    r3 = ld.u8.global r0      ; zero-extended
    r4 = add.i64 r0, 2
    r5 = ld.i16.global r4
    r6 = ld.u16.global r4
    r7 = add.i64 r0, 4
    r8 = ld.i32.global r7
    r9 = ld.u32.global r7
    r10 = add.i64 r0, 8
    r11 = ld.i64.global r10
    st.i64.global r1, r2
    r12 = add.i64 r1, 8
    st.i64.global r12, r3
    r13 = add.i64 r1, 16
    st.i64.global r13, r5
    r14 = add.i64 r1, 24
    st.i64.global r14, r6
    r15 = add.i64 r1, 32
    st.i64.global r15, r8
    r16 = add.i64 r1, 40
    st.i64.global r16, r9
    r17 = add.i64 r1, 48
    st.i64.global r17, r11
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto in = mem.alloc(16);
    const auto out = mem.alloc(64);
    mem.write<std::uint8_t>(in, 0xff);       // -1 as i8
    mem.write<std::uint16_t>(in + 2, 0x8001); // negative as i16
    mem.write<std::uint32_t>(in + 4, 0x80000001u);
    mem.write<std::uint64_t>(in + 8, 0x1122334455667788ull);
    const auto prog = compile(text);
    run(prog, mem, {1, 1},
        {static_cast<std::uint64_t>(in), static_cast<std::uint64_t>(out)});

    EXPECT_EQ(mem.read<std::int64_t>(out), -1);
    EXPECT_EQ(mem.read<std::int64_t>(out + 8), 0xff);
    EXPECT_EQ(mem.read<std::int64_t>(out + 16),
              static_cast<std::int64_t>(static_cast<std::int16_t>(0x8001)));
    EXPECT_EQ(mem.read<std::int64_t>(out + 24), 0x8001);
    EXPECT_EQ(mem.read<std::int64_t>(out + 32),
              static_cast<std::int64_t>(
                  static_cast<std::int32_t>(0x80000001u)));
    EXPECT_EQ(mem.read<std::int64_t>(out + 40), 0x80000001ll);
    EXPECT_EQ(mem.read<std::int64_t>(out + 48), 0x1122334455667788ll);
}

TEST(ExecutorMemory, SharedMemoryIsPerBlock)
{
    // Each block writes its bid into shared[0], syncs, and every thread
    // reads it back out to global. Blocks must not see each other's value.
    constexpr const char* text = R"(
kernel @shared params 1 regs 16 shared 64 local 0 {
entry:
    r1 = tid
    r2 = bid
    r3 = cmp.eq.i32 r1, 0
    brc r3, store, sync
store:
    st.i32.shared 0, r2
    br sync
sync:
    bar.sync
    r4 = ld.i32.shared 0
    r5 = ntid
    r6 = mul.i32 r2, r5
    r7 = add.i32 r6, r1
    r8 = cvt.i32.i64 r7
    r9 = mul.i64 r8, 4
    r10 = add.i64 r0, r9
    st.i32.global r10, r4
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(4 * 64 * 4);
    const auto prog = compile(text);
    run(prog, mem, {4, 64}, {static_cast<std::uint64_t>(out)});
    for (int b = 0; b < 4; ++b)
        for (int t = 0; t < 64; ++t)
            EXPECT_EQ(mem.read<std::int32_t>(out + (b * 64 + t) * 4), b)
                << "block " << b << " thread " << t;
}

TEST(ExecutorMemory, SharedMemoryZeroInitialized)
{
    constexpr const char* text = R"(
kernel @szero params 1 regs 8 shared 32 local 0 {
entry:
    r1 = ld.i32.shared 16
    st.i32.global r0, r1
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(4);
    mem.write<std::int32_t>(out, 77);
    const auto prog = compile(text);
    run(prog, mem, {1, 1}, {static_cast<std::uint64_t>(out)});
    EXPECT_EQ(mem.read<std::int32_t>(out), 0);
}

TEST(ExecutorMemory, LocalMemoryIsPerThread)
{
    // Every thread spills tid into the same local offset then reads back.
    constexpr const char* text = R"(
kernel @local params 1 regs 16 shared 0 local 16 {
entry:
    r1 = tid
    st.i32.local 4, r1
    bar.sync
    r2 = ld.i32.local 4
    r3 = cvt.i32.i64 r1
    r4 = mul.i64 r3, 4
    r5 = add.i64 r0, r4
    st.i32.global r5, r2
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(64 * 4);
    const auto prog = compile(text);
    run(prog, mem, {1, 64}, {static_cast<std::uint64_t>(out)});
    for (int t = 0; t < 64; ++t)
        EXPECT_EQ(mem.read<std::int32_t>(out + t * 4), t);
}

TEST(ExecutorMemory, AtomicAddAccumulatesAcrossWholeGrid)
{
    constexpr const char* text = R"(
kernel @atom params 1 regs 8 shared 0 local 0 {
entry:
    r1 = atom.add.i32.global r0, 1
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto counter = mem.alloc(4);
    const auto prog = compile(text);
    run(prog, mem, {4, 96}, {static_cast<std::uint64_t>(counter)});
    EXPECT_EQ(mem.read<std::int32_t>(counter), 4 * 96);
}

TEST(ExecutorMemory, AtomicAddF32)
{
    constexpr const char* text = R"(
kernel @atomf params 1 regs 8 shared 0 local 0 {
entry:
    r1 = atom.add.f32.global r0, 0.5f
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto acc = mem.alloc(4);
    const auto prog = compile(text);
    run(prog, mem, {1, 64}, {static_cast<std::uint64_t>(acc)});
    EXPECT_FLOAT_EQ(mem.read<float>(acc), 32.0f);
}

TEST(ExecutorMemory, AtomicCasClaimsExactlyOnce)
{
    // All 64 threads try to CAS 0 -> tid+1. Exactly one wins; the
    // deterministic winner is lane 0 of warp 0.
    constexpr const char* text = R"(
kernel @cas params 2 regs 12 shared 0 local 0 {
entry:
    r2 = tid
    r3 = add.i32 r2, 1
    r4 = atom.cas.i32.global r0, 0, r3
    r5 = cmp.eq.i32 r4, 0
    brc r5, winner, done
winner:
    st.i32.global r1, r2
    br done
done:
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto slot = mem.alloc(4);
    const auto who = mem.alloc(4);
    mem.write<std::int32_t>(who, -1);
    const auto prog = compile(text);
    run(prog, mem, {1, 64},
        {static_cast<std::uint64_t>(slot), static_cast<std::uint64_t>(who)});
    EXPECT_EQ(mem.read<std::int32_t>(slot), 1); // lane 0 won with tid+1=1
    EXPECT_EQ(mem.read<std::int32_t>(who), 0);
}

TEST(ExecutorMemory, AtomicMaxMin)
{
    constexpr const char* text = R"(
kernel @amax params 2 regs 12 shared 0 local 0 {
entry:
    r2 = tid
    r3 = sub.i32 r2, 16
    r4 = atom.max.i32.global r0, r3
    r5 = atom.min.i32.global r1, r3
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto maxSlot = mem.alloc(4);
    const auto minSlot = mem.alloc(4);
    mem.write<std::int32_t>(maxSlot, -1000);
    mem.write<std::int32_t>(minSlot, 1000);
    const auto prog = compile(text);
    run(prog, mem, {1, 32},
        {static_cast<std::uint64_t>(maxSlot),
         static_cast<std::uint64_t>(minSlot)});
    EXPECT_EQ(mem.read<std::int32_t>(maxSlot), 15);
    EXPECT_EQ(mem.read<std::int32_t>(minSlot), -16);
}

TEST(ExecutorMemory, SharedAtomicsWork)
{
    constexpr const char* text = R"(
kernel @satom params 1 regs 8 shared 16 local 0 {
entry:
    r1 = atom.add.i32.shared 0, 2
    bar.sync
    r2 = tid
    r3 = cmp.eq.i32 r2, 0
    brc r3, out, done
out:
    r4 = ld.i32.shared 0
    st.i32.global r0, r4
    br done
done:
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(4);
    const auto prog = compile(text);
    run(prog, mem, {1, 64}, {static_cast<std::uint64_t>(out)});
    EXPECT_EQ(mem.read<std::int32_t>(out), 128);
}

TEST(ExecutorMemory, SameAddressStoreResolvesToHighestLane)
{
    // All lanes store tid to the same address; the deterministic rule is
    // lane order, so the last (highest) lane wins.
    constexpr const char* text = R"(
kernel @race params 1 regs 8 shared 0 local 0 {
entry:
    r1 = tid
    st.i32.global r0, r1
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(4);
    const auto prog = compile(text);
    run(prog, mem, {1, 32}, {static_cast<std::uint64_t>(out)});
    EXPECT_EQ(mem.read<std::int32_t>(out), 31);
}

} // namespace
} // namespace gevo::sim
