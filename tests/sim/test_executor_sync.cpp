#include <gtest/gtest.h>

#include "sim_test_util.h"

namespace gevo::sim {
namespace {

using testutil::compile;
using testutil::run;
using testutil::runExpectFault;

TEST(ExecutorSync, ShflUpShiftsValuesWithinWarp)
{
    constexpr const char* text = R"(
kernel @shfl params 1 regs 16 shared 0 local 0 {
entry:
    r1 = tid
    r2 = mul.i32 r1, 10
    r3 = activemask
    r4 = shfl.up r3, r2, 1
    r5 = cvt.i32.i64 r1
    r6 = mul.i64 r5, 4
    r7 = add.i64 r0, r6
    st.i32.global r7, r4
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(64 * 4);
    const auto prog = compile(text);
    run(prog, mem, {1, 64}, {static_cast<std::uint64_t>(out)});
    for (int t = 0; t < 64; ++t) {
        // Lane 0 of each warp keeps its own value; others get lane-1's.
        const int lane = t % 32;
        const int expect = lane == 0 ? t * 10 : (t - 1) * 10;
        EXPECT_EQ(mem.read<std::int32_t>(out + t * 4), expect)
            << "thread " << t;
    }
}

TEST(ExecutorSync, ShflIdxBroadcastsFromLane)
{
    constexpr const char* text = R"(
kernel @bcast params 1 regs 16 shared 0 local 0 {
entry:
    r1 = tid
    r2 = mul.i32 r1, 3
    r3 = activemask
    r4 = shfl.idx r3, r2, 5
    r5 = cvt.i32.i64 r1
    r6 = mul.i64 r5, 4
    r7 = add.i64 r0, r6
    st.i32.global r7, r4
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(32 * 4);
    const auto prog = compile(text);
    run(prog, mem, {1, 32}, {static_cast<std::uint64_t>(out)});
    for (int t = 0; t < 32; ++t)
        EXPECT_EQ(mem.read<std::int32_t>(out + t * 4), 15);
}

TEST(ExecutorSync, BallotCollectsPredicates)
{
    constexpr const char* text = R"(
kernel @ballot params 1 regs 16 shared 0 local 0 {
entry:
    r1 = laneid
    r2 = rem.i32 r1, 2
    r3 = cmp.eq.i32 r2, 0
    r4 = activemask
    r5 = ballot r4, r3
    r6 = tid
    r7 = cvt.i32.i64 r6
    r8 = mul.i64 r7, 4
    r9 = add.i64 r0, r8
    st.u32.global r9, r5
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(32 * 4);
    const auto prog = compile(text);
    run(prog, mem, {1, 32}, {static_cast<std::uint64_t>(out)});
    for (int t = 0; t < 32; ++t)
        EXPECT_EQ(mem.read<std::uint32_t>(out + t * 4), 0x55555555u);
}

TEST(ExecutorSync, ActiveMaskReflectsDivergence)
{
    constexpr const char* text = R"(
kernel @amask params 1 regs 16 shared 0 local 0 {
entry:
    r1 = laneid
    r2 = cmp.lt.i32 r1, 8
    r3 = tid
    r4 = cvt.i32.i64 r3
    r5 = mul.i64 r4, 4
    r6 = add.i64 r0, r5
    brc r2, low, high
low:
    r7 = activemask
    st.u32.global r6, r7
    br join
high:
    r8 = activemask
    st.u32.global r6, r8
    br join
join:
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(32 * 4);
    const auto prog = compile(text);
    run(prog, mem, {1, 32}, {static_cast<std::uint64_t>(out)});
    for (int t = 0; t < 32; ++t) {
        const std::uint32_t expect = t < 8 ? 0x000000ffu : 0xffffff00u;
        EXPECT_EQ(mem.read<std::uint32_t>(out + t * 4), expect)
            << "lane " << t;
    }
}

TEST(ExecutorSync, PartialWarpActiveMask)
{
    constexpr const char* text = R"(
kernel @partial params 1 regs 8 shared 0 local 0 {
entry:
    r1 = activemask
    st.u32.global r0, r1
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(4);
    const auto prog = compile(text);
    run(prog, mem, {1, 20}, {static_cast<std::uint64_t>(out)});
    EXPECT_EQ(mem.read<std::uint32_t>(out), (1u << 20) - 1);
}

TEST(ExecutorSync, VoltaShflWithStaleMaskFaults)
{
    // Take activemask before divergence, use it inside a divergent branch:
    // legal on Pascal's lock-step model, IllegalWarpSync on Volta
    // (this is the paper's Sec IV "portability trap" for ADEPT-V1).
    constexpr const char* text = R"(
kernel @stale params 1 regs 16 shared 0 local 0 {
entry:
    r1 = laneid
    r2 = activemask        ; full warp
    r3 = cmp.lt.i32 r1, 16
    brc r3, low, join
low:
    r4 = shfl.up r2, r1, 1 ; mask names lanes 16..31, now inactive
    st.i32.global r0, r4
    br join
join:
    ret
}
)";
    const auto prog = compile(text);
    {
        DeviceMemory mem(1 << 16);
        const auto out = mem.alloc(4);
        run(prog, mem, {1, 32}, {static_cast<std::uint64_t>(out)}, p100());
    }
    {
        DeviceMemory mem(1 << 16);
        const auto out = mem.alloc(4);
        runExpectFault(prog, mem, {1, 32}, FaultKind::IllegalWarpSync,
                       {static_cast<std::uint64_t>(out)}, v100());
    }
}

TEST(ExecutorSync, VoltaShflWithFreshMaskIsLegal)
{
    constexpr const char* text = R"(
kernel @fresh params 1 regs 16 shared 0 local 0 {
entry:
    r1 = laneid
    r3 = cmp.lt.i32 r1, 16
    brc r3, low, join
low:
    r2 = activemask        ; taken inside the branch: only active lanes
    r4 = shfl.up r2, r1, 1
    st.i32.global r0, r4
    br join
join:
    ret
}
)";
    const auto prog = compile(text);
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(4);
    run(prog, mem, {1, 32}, {static_cast<std::uint64_t>(out)}, v100());
}

TEST(ExecutorSync, VoltaBallotWithStaleMaskFaults)
{
    constexpr const char* text = R"(
kernel @bstale params 1 regs 16 shared 0 local 0 {
entry:
    r1 = laneid
    r2 = activemask
    r3 = cmp.lt.i32 r1, 4
    brc r3, low, join
low:
    r4 = ballot r2, r3
    st.u32.global r0, r4
    br join
join:
    ret
}
)";
    const auto prog = compile(text);
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(4);
    runExpectFault(prog, mem, {1, 32}, FaultKind::IllegalWarpSync,
                   {static_cast<std::uint64_t>(out)}, v100());
}

TEST(ExecutorSync, BarrierOrdersProducerConsumerAcrossWarps)
{
    // Warp 1 consumes what warp 0 produced before the barrier.
    constexpr const char* text = R"(
kernel @prodcons params 1 regs 16 shared 256 local 0 {
entry:
    r1 = tid
    r2 = warpid
    r3 = cmp.eq.i32 r2, 0
    brc r3, produce, wait
produce:
    r4 = mul.i32 r1, 4
    r5 = cvt.i32.i64 r4
    r6 = add.i32 r1, 100
    st.i32.shared r5, r6
    br wait
wait:
    bar.sync
    r7 = cmp.eq.i32 r2, 1
    brc r7, consume, done
consume:
    r8 = sub.i32 r1, 32
    r9 = mul.i32 r8, 4
    r10 = cvt.i32.i64 r9
    r11 = ld.i32.shared r10
    r12 = cvt.i32.i64 r8
    r13 = mul.i64 r12, 4
    r14 = add.i64 r0, r13
    st.i32.global r14, r11
    br done
done:
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(32 * 4);
    const auto prog = compile(text);
    run(prog, mem, {1, 64}, {static_cast<std::uint64_t>(out)});
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(mem.read<std::int32_t>(out + i * 4), i + 100);
}

TEST(ExecutorSync, ShflFromInactiveSourceKeepsOwnValueWhenMaskExcludesIt)
{
    // shfl.up with a mask that excludes the source lane: the reader keeps
    // its own value (both architectures).
    constexpr const char* text = R"(
kernel @nosrc params 1 regs 16 shared 0 local 0 {
entry:
    r1 = laneid
    r2 = mul.i32 r1, 7
    r3 = shfl.up 0xfffffffe, r2, 1   ; mask excludes lane 0
    r4 = tid
    r5 = cvt.i32.i64 r4
    r6 = mul.i64 r5, 4
    r7 = add.i64 r0, r6
    st.i32.global r7, r3
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(32 * 4);
    const auto prog = compile(text);
    // Mask must cover the executing lanes on Volta; lane 0 is executing
    // but excluded, so run on Pascal only.
    run(prog, mem, {1, 32}, {static_cast<std::uint64_t>(out)}, p100());
    // Lane 1 reads lane 0? No: lane 0 not in mask -> keeps own 7.
    EXPECT_EQ(mem.read<std::int32_t>(out + 1 * 4), 7);
    // Lane 2 reads lane 1's value 7*1=7... source in mask -> gets it.
    EXPECT_EQ(mem.read<std::int32_t>(out + 2 * 4), 7);
    EXPECT_EQ(mem.read<std::int32_t>(out + 3 * 4), 14);
}

} // namespace
} // namespace gevo::sim
