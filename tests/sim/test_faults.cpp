#include <gtest/gtest.h>

#include "sim_test_util.h"

namespace gevo::sim {
namespace {

using testutil::compile;
using testutil::runExpectFault;

TEST(Faults, GlobalOobPastMappedEnd)
{
    constexpr const char* text = R"(
kernel @oob params 1 regs 8 shared 0 local 0 {
entry:
    r1 = ld.i32.global r0
    st.i32.global r0, r1
    ret
}
)";
    DeviceMemory mem(1 << 20);
    mem.alloc(256);
    const auto prog = compile(text);
    // Address far past the mapped page.
    runExpectFault(prog, mem, {1, 1}, FaultKind::MemOobGlobal,
                   {1u << 19});
}

TEST(Faults, GlobalNegativeAddressFaults)
{
    constexpr const char* text = R"(
kernel @neg params 1 regs 8 shared 0 local 0 {
entry:
    r1 = ld.i32.global -8
    st.i32.global r0, r1
    ret
}
)";
    DeviceMemory mem(1 << 20);
    const auto out = mem.alloc(64);
    const auto prog = compile(text);
    runExpectFault(prog, mem, {1, 1}, FaultKind::MemOobGlobal,
                   {static_cast<std::uint64_t>(out)});
}

TEST(Faults, GlobalReadWithinPageSlackIsAllowed)
{
    // Reads a little past the allocation but inside the mapped page:
    // garbage, not a fault (Sec VI-D small-grid behaviour).
    constexpr const char* text = R"(
kernel @slack params 1 regs 8 shared 0 local 0 {
entry:
    r1 = add.i64 r0, 400
    r2 = ld.i32.global r1
    st.i32.global r0, r2
    ret
}
)";
    DeviceMemory mem(1 << 20);
    const auto grid = mem.alloc(100 * 4); // page-rounded to 4096
    const auto prog = compile(text);
    const auto res = launchKernel(p100(), mem, prog, {1, 1},
                                  {static_cast<std::uint64_t>(grid)});
    EXPECT_TRUE(res.ok()) << res.fault.detail;
}

TEST(Faults, SharedOob)
{
    constexpr const char* text = R"(
kernel @soob params 1 regs 8 shared 64 local 0 {
entry:
    r1 = ld.i32.shared 128
    st.i32.global r0, r1
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(64);
    const auto prog = compile(text);
    runExpectFault(prog, mem, {1, 1}, FaultKind::MemOobShared,
                   {static_cast<std::uint64_t>(out)});
}

TEST(Faults, SharedNegativeIndexFaults)
{
    // The "tid-1 at tid==0" mutant shape from ADEPT.
    constexpr const char* text = R"(
kernel @sneg params 1 regs 8 shared 64 local 0 {
entry:
    r1 = tid
    r2 = sub.i32 r1, 1
    r3 = mul.i32 r2, 4
    r4 = cvt.i32.i64 r3
    r5 = ld.i32.shared r4
    st.i32.global r0, r5
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(64);
    const auto prog = compile(text);
    runExpectFault(prog, mem, {1, 8}, FaultKind::MemOobShared,
                   {static_cast<std::uint64_t>(out)});
}

TEST(Faults, LocalOob)
{
    constexpr const char* text = R"(
kernel @loob params 1 regs 8 shared 0 local 8 {
entry:
    r1 = ld.i32.local 12
    st.i32.global r0, r1
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(64);
    const auto prog = compile(text);
    runExpectFault(prog, mem, {1, 1}, FaultKind::MemOobLocal,
                   {static_cast<std::uint64_t>(out)});
}

TEST(Faults, BarrierUnderDivergence)
{
    constexpr const char* text = R"(
kernel @bdiv params 1 regs 8 shared 0 local 0 {
entry:
    r1 = laneid
    r2 = cmp.lt.i32 r1, 16
    brc r2, low, join
low:
    bar.sync
    br join
join:
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto prog = compile(text);
    runExpectFault(prog, mem, {1, 32}, FaultKind::BarrierDivergence, {0});
}

TEST(Faults, InfiniteLoopTimesOut)
{
    constexpr const char* text = R"(
kernel @spin params 1 regs 8 shared 0 local 0 {
entry:
    br spin
spin:
    r1 = add.i32 r1, 1
    br spin
}
)";
    DeviceMemory mem(1 << 16);
    const auto prog = compile(text);
    auto dev = p100();
    dev.maxInstrPerThread = 10000; // keep the test quick
    auto result = launchKernel(dev, mem, prog, {1, 32}, {0});
    EXPECT_EQ(result.fault.kind, FaultKind::Timeout);
}

TEST(Faults, MissingArgumentsRejected)
{
    constexpr const char* text = R"(
kernel @args params 2 regs 8 shared 0 local 0 {
entry:
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto prog = compile(text);
    auto result = launchKernel(p100(), mem, prog, {1, 1}, {0});
    EXPECT_EQ(result.fault.kind, FaultKind::InvalidProgram);
}

TEST(Faults, BadLaunchDimsRejected)
{
    constexpr const char* text = R"(
kernel @dims params 0 regs 8 shared 0 local 0 {
entry:
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto prog = compile(text);
    EXPECT_EQ(launchKernel(p100(), mem, prog, {1, 0}, {}).fault.kind,
              FaultKind::InvalidProgram);
    EXPECT_EQ(launchKernel(p100(), mem, prog, {0, 32}, {}).fault.kind,
              FaultKind::InvalidProgram);
    EXPECT_EQ(launchKernel(p100(), mem, prog, {1, 2048}, {}).fault.kind,
              FaultKind::InvalidProgram);
}

TEST(Faults, FaultDetailNamesKernelAndKind)
{
    constexpr const char* text = R"(
kernel @detail params 1 regs 8 shared 0 local 0 {
entry:
    r1 = ld.i32.global -4
    st.i32.global r0, r1
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(64);
    const auto prog = compile(text);
    const auto res = launchKernel(p100(), mem, prog, {1, 1},
                                  {static_cast<std::uint64_t>(out)});
    ASSERT_EQ(res.fault.kind, FaultKind::MemOobGlobal);
    EXPECT_NE(res.fault.detail.find("detail"), std::string::npos);
    EXPECT_NE(res.fault.detail.find("global-oob"), std::string::npos);
}

} // namespace
} // namespace gevo::sim
