/// Hard SIMT reconvergence cases: loops nested inside divergent branches,
/// divergent trip counts inside divergent regions, and branches whose
/// reconvergence point is the kernel exit. Mutated CFGs reach these
/// shapes routinely, so the stack discipline must be exact.

#include <gtest/gtest.h>

#include "sim_test_util.h"

namespace gevo::sim {
namespace {

using testutil::compile;
using testutil::run;

TEST(ReconvergenceEdge, LoopInsideDivergentBranch)
{
    // Odd lanes run a loop (lane-dependent trips), even lanes skip it;
    // everyone must still reconverge and write the epilogue value.
    constexpr const char* text = R"(
kernel @loopdiv params 1 regs 24 shared 0 local 0 {
entry:
    r1 = tid
    r2 = rem.i32 r1, 2
    r3 = cmp.eq.i32 r2, 1
    r4 = mov 0
    brc r3, looper, join
looper:
    r5 = mov 0
    br header
header:
    r4 = add.i32 r4, r1
    r5 = add.i32 r5, 1
    r6 = rem.i32 r1, 4
    r7 = add.i32 r6, 1
    r8 = cmp.lt.i32 r5, r7
    brc r8, header, join
join:
    r9 = add.i32 r4, 1000
    r10 = cvt.i32.i64 r1
    r11 = mul.i64 r10, 4
    r12 = add.i64 r0, r11
    st.i32.global r12, r9
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(64 * 4);
    const auto prog = compile(text);
    run(prog, mem, {1, 64}, {static_cast<std::uint64_t>(out)});
    for (int t = 0; t < 64; ++t) {
        const int trips = t % 2 == 1 ? t % 4 + 1 : 0;
        EXPECT_EQ(mem.read<std::int32_t>(out + 4 * t), t * trips + 1000)
            << "thread " << t;
    }
}

TEST(ReconvergenceEdge, DivergentBranchInsideLoop)
{
    // Per-iteration divergence inside a uniform loop: accumulators per
    // path must interleave correctly across iterations.
    constexpr const char* text = R"(
kernel @divinloop params 1 regs 24 shared 0 local 0 {
entry:
    r1 = tid
    r2 = mov 0
    r3 = mov 0
    br header
header:
    r4 = add.i32 r3, r1
    r5 = rem.i32 r4, 2
    r6 = cmp.eq.i32 r5, 0
    brc r6, evenp, oddp
evenp:
    r2 = add.i32 r2, 2
    br cont
oddp:
    r2 = add.i32 r2, 5
    br cont
cont:
    r3 = add.i32 r3, 1
    r7 = cmp.lt.i32 r3, 6
    brc r7, header, exit
exit:
    r8 = cvt.i32.i64 r1
    r9 = mul.i64 r8, 4
    r10 = add.i64 r0, r9
    st.i32.global r10, r2
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(32 * 4);
    const auto prog = compile(text);
    run(prog, mem, {1, 32}, {static_cast<std::uint64_t>(out)});
    for (int t = 0; t < 32; ++t) {
        int acc = 0;
        for (int i = 0; i < 6; ++i)
            acc += (t + i) % 2 == 0 ? 2 : 5;
        EXPECT_EQ(mem.read<std::int32_t>(out + 4 * t), acc)
            << "thread " << t;
    }
}

TEST(ReconvergenceEdge, BranchReconvergingOnlyAtExit)
{
    // Both sides of the branch return without a join block: the
    // reconvergence point is the virtual exit.
    constexpr const char* text = R"(
kernel @noexitjoin params 1 regs 16 shared 0 local 0 {
entry:
    r1 = tid
    r2 = cmp.lt.i32 r1, 10
    r3 = cvt.i32.i64 r1
    r4 = mul.i64 r3, 4
    r5 = add.i64 r0, r4
    brc r2, low, high
low:
    st.i32.global r5, 111
    ret
high:
    st.i32.global r5, 222
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(32 * 4);
    const auto prog = compile(text);
    run(prog, mem, {1, 32}, {static_cast<std::uint64_t>(out)});
    for (int t = 0; t < 32; ++t)
        EXPECT_EQ(mem.read<std::int32_t>(out + 4 * t),
                  t < 10 ? 111 : 222);
}

TEST(ReconvergenceEdge, TripleNestedDivergence)
{
    constexpr const char* text = R"(
kernel @deep params 1 regs 24 shared 0 local 0 {
entry:
    r1 = laneid
    r2 = rem.i32 r1, 2
    r3 = rem.i32 r1, 4
    r4 = rem.i32 r1, 8
    r5 = cmp.eq.i32 r2, 0
    r10 = mov 0
    brc r5, l1t, l1f
l1t:
    r6 = cmp.eq.i32 r3, 0
    brc r6, l2t, l2f
l2t:
    r7 = cmp.eq.i32 r4, 0
    brc r7, l3t, l3f
l3t:
    r10 = mov 8
    br j2
l3f:
    r10 = mov 4
    br j2
j2:
    br j1
l2f:
    r10 = mov 2
    br j1
j1:
    br join
l1f:
    r10 = mov 1
    br join
join:
    r11 = cvt.i32.i64 r1
    r12 = mul.i64 r11, 4
    r13 = add.i64 r0, r12
    st.i32.global r13, r10
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(32 * 4);
    const auto prog = compile(text);
    run(prog, mem, {1, 32}, {static_cast<std::uint64_t>(out)});
    for (int t = 0; t < 32; ++t) {
        int expect = 1;
        if (t % 2 == 0)
            expect = t % 4 == 0 ? (t % 8 == 0 ? 8 : 4) : 2;
        EXPECT_EQ(mem.read<std::int32_t>(out + 4 * t), expect)
            << "lane " << t;
    }
}

TEST(ReconvergenceEdge, SelfLoopBranchTargets)
{
    // A conditional branch whose taken target is its own block (produced
    // by mutations rewriting labels). Must terminate and compute.
    constexpr const char* text = R"(
kernel @selfloop params 1 regs 16 shared 0 local 0 {
entry:
    r1 = tid
    r2 = mov 0
    br spin
spin:
    r2 = add.i32 r2, 1
    r3 = cmp.lt.i32 r2, r1
    brc r3, spin, done
done:
    r4 = cvt.i32.i64 r1
    r5 = mul.i64 r4, 4
    r6 = add.i64 r0, r5
    st.i32.global r6, r2
    ret
}
)";
    DeviceMemory mem(1 << 16);
    const auto out = mem.alloc(64 * 4);
    const auto prog = compile(text);
    run(prog, mem, {1, 48}, {static_cast<std::uint64_t>(out)});
    for (int t = 0; t < 48; ++t)
        EXPECT_EQ(mem.read<std::int32_t>(out + 4 * t), std::max(1, t))
            << "thread " << t;
}

} // namespace
} // namespace gevo::sim
