#include <gtest/gtest.h>

#include "ir/builder.h"
#include "sim_test_util.h"

namespace gevo::sim {
namespace {

using testutil::compile;
using testutil::run;

/// Run and return simulated milliseconds.
double
simMs(const char* text, LaunchDims dims, const DeviceConfig& dev,
      std::int64_t bytes = 1 << 20)
{
    DeviceMemory mem(bytes);
    mem.alloc(1 << 18);
    const auto prog = compile(text);
    const auto res = launchKernel(dev, mem, prog, dims, {0});
    EXPECT_TRUE(res.ok()) << res.fault.detail;
    return res.stats.ms;
}

// Coalesced: lane i touches word i. Strided: lane i touches word 32*i.
constexpr const char* kCoalesced = R"(
kernel @co params 1 regs 16 shared 0 local 0 {
entry:
    r1 = tid
    r2 = cvt.i32.i64 r1
    r3 = mul.i64 r2, 4
    r4 = add.i64 r0, r3
    r5 = ld.i32.global r4
    st.i32.global r4, r5
    ret
}
)";

constexpr const char* kStrided = R"(
kernel @str params 1 regs 16 shared 0 local 0 {
entry:
    r1 = tid
    r2 = cvt.i32.i64 r1
    r3 = mul.i64 r2, 128
    r4 = add.i64 r0, r3
    r5 = ld.i32.global r4
    st.i32.global r4, r5
    ret
}
)";

TEST(Timing, StridedGlobalAccessIsSlower)
{
    const auto dev = p100();
    const double co = simMs(kCoalesced, {64, 256}, dev);
    const double str = simMs(kStrided, {64, 256}, dev);
    EXPECT_GT(str, co * 2.0);
}

TEST(Timing, GlobalSectorCountsReflectCoalescing)
{
    DeviceMemory mem(1 << 22);
    mem.alloc(1 << 20);
    const auto prog = compile(kStrided);
    const auto res = launchKernel(p100(), mem, prog, {1, 32}, {0});
    ASSERT_TRUE(res.ok());
    // 32 lanes x 128B stride: every lane its own sector, ld + st.
    EXPECT_EQ(res.stats.globalSectors, 64u);

    DeviceMemory mem2(1 << 22);
    mem2.alloc(1 << 20);
    const auto prog2 = compile(kCoalesced);
    const auto res2 = launchKernel(p100(), mem2, prog2, {1, 32}, {0});
    // 32 lanes x 4B: 4 sectors per access.
    EXPECT_EQ(res2.stats.globalSectors, 8u);
}

// Bank conflicts: stride-32 words hit the same bank.
constexpr const char* kBankConflict = R"(
kernel @bank params 1 regs 16 shared 8192 local 0 {
entry:
    r1 = tid
    r2 = mul.i32 r1, 128
    r3 = cvt.i32.i64 r2
    r4 = ld.i32.shared r3
    st.i32.global r0, r4
    ret
}
)";

constexpr const char* kBankClean = R"(
kernel @clean params 1 regs 16 shared 8192 local 0 {
entry:
    r1 = tid
    r2 = mul.i32 r1, 4
    r3 = cvt.i32.i64 r2
    r4 = ld.i32.shared r3
    st.i32.global r0, r4
    ret
}
)";

TEST(Timing, SharedBankConflictsCostMore)
{
    DeviceMemory memA(1 << 20);
    memA.alloc(1024);
    const auto resA = launchKernel(p100(), memA, compile(kBankConflict),
                                   {1, 32}, {0});
    DeviceMemory memB(1 << 20);
    memB.alloc(1024);
    const auto resB = launchKernel(p100(), memB, compile(kBankClean),
                                   {1, 32}, {0});
    ASSERT_TRUE(resA.ok());
    ASSERT_TRUE(resB.ok());
    EXPECT_GT(resA.stats.sharedConflictWays,
              resB.stats.sharedConflictWays);
    EXPECT_GT(resA.stats.issueCycles, resB.stats.issueCycles);
}

// Same-address stores from the whole warp serialize (the ADEPT-V0 memset
// pathology).
constexpr const char* kSameAddrStore = R"(
kernel @same params 1 regs 16 shared 4096 local 0 {
entry:
    r1 = mov 0
    br loop
loop:
    st.i32.shared 64, r1
    r1 = add.i32 r1, 1
    r2 = cmp.lt.i32 r1, 64
    brc r2, loop, done
done:
    ret
}
)";

constexpr const char* kSpreadStore = R"(
kernel @spread params 1 regs 16 shared 4096 local 0 {
entry:
    r1 = mov 0
    r3 = tid
    r4 = mul.i32 r3, 4
    r5 = cvt.i32.i64 r4
    br loop
loop:
    st.i32.shared r5, r1
    r1 = add.i32 r1, 1
    r2 = cmp.lt.i32 r1, 64
    brc r2, loop, done
done:
    ret
}
)";

TEST(Timing, SameAddressStoresSerialize)
{
    DeviceMemory memA(1 << 20);
    memA.alloc(64);
    const auto resA = launchKernel(p100(), memA, compile(kSameAddrStore),
                                   {1, 32}, {0});
    DeviceMemory memB(1 << 20);
    memB.alloc(64);
    const auto resB = launchKernel(p100(), memB, compile(kSpreadStore),
                                   {1, 32}, {0});
    ASSERT_TRUE(resA.ok());
    ASSERT_TRUE(resB.ok());
    // The loop-carried ALU chain is a fixed cost in both kernels, so the
    // observable ratio is below the raw 32x conflict factor.
    EXPECT_GT(resA.stats.ms, resB.stats.ms * 3);
    EXPECT_GT(resA.stats.sharedConflictWays,
              resB.stats.sharedConflictWays + 1000);
}

// Scoreboard: dependent use right after a load stalls; padding the gap
// with independent work hides the latency (Sec VI-E's mechanism).
constexpr const char* kLoadUseTight = R"(
kernel @tight params 1 regs 24 shared 0 local 0 {
entry:
    r5 = ld.i32.global r0
    r6 = add.i32 r5, 1
    st.i32.global r0, r6
    ret
}
)";

constexpr const char* kLoadUsePadded = R"(
kernel @padded params 1 regs 24 shared 0 local 0 {
entry:
    r5 = ld.i32.global r0
    r10 = mov 1
    r11 = add.i32 r10, 2
    r12 = add.i32 r11, 3
    st.i32.global r0, r12   ; also keeps the fillers live
    r6 = add.i32 r5, 1
    st.i32.global r0, r6
    ret
}
)";

TEST(Timing, IndependentWorkHidesLoadLatency)
{
    DeviceMemory memA(1 << 20);
    memA.alloc(64);
    const auto a = launchKernel(p100(), memA, compile(kLoadUseTight),
                                {1, 32}, {0});
    DeviceMemory memB(1 << 20);
    memB.alloc(64);
    const auto b = launchKernel(p100(), memB, compile(kLoadUsePadded),
                                {1, 32}, {0});
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    // The padded kernel issues more instructions yet takes no longer:
    // the fill work hides the load latency.
    EXPECT_GT(b.stats.warpInstrs, a.stats.warpInstrs);
    EXPECT_LE(b.stats.ms, a.stats.ms * 1.02);
}

TEST(Timing, VoltaBallotCostsMoreThanPascal)
{
    constexpr const char* text = R"(
kernel @bal params 1 regs 16 shared 0 local 0 {
entry:
    r1 = mov 0
    br loop
loop:
    r2 = activemask
    r3 = ballot r2, 1
    r1 = add.i32 r1, 1
    r4 = cmp.lt.i32 r1, 256
    brc r4, loop, done
done:
    st.u32.global r0, r3
    ret
}
)";
    // Compare against the identical loop without the ballot.
    constexpr const char* noBallot = R"(
kernel @nobal params 1 regs 16 shared 0 local 0 {
entry:
    r1 = mov 0
    br loop
loop:
    r2 = activemask
    r3 = mov r2
    r1 = add.i32 r1, 1
    r4 = cmp.lt.i32 r1, 256
    brc r4, loop, done
done:
    st.u32.global r0, r3
    ret
}
)";
    auto cyclesOn = [&](const DeviceConfig& dev, const char* t) {
        DeviceMemory mem(1 << 20);
        mem.alloc(64);
        const auto res = launchKernel(dev, mem, compile(t), {1, 32}, {0});
        EXPECT_TRUE(res.ok());
        return static_cast<double>(res.stats.cycles);
    };
    const double pascalPenalty =
        cyclesOn(p100(), text) / cyclesOn(p100(), noBallot);
    const double voltaPenalty =
        cyclesOn(v100(), text) / cyclesOn(v100(), noBallot);
    EXPECT_GT(voltaPenalty, pascalPenalty * 1.5);
}

TEST(Timing, DivergenceCostsCycles)
{
    constexpr const char* divergent = R"(
kernel @div params 1 regs 16 shared 0 local 0 {
entry:
    r1 = laneid
    r2 = rem.i32 r1, 2
    r3 = cmp.eq.i32 r2, 0
    r5 = mov 0
    br loop
loop:
    brc r3, a, b
a:
    r6 = add.i32 r5, 1
    br j
b:
    r6 = add.i32 r5, 2
    br j
j:
    r5 = add.i32 r5, 1
    r7 = cmp.lt.i32 r5, 200
    brc r7, loop, done
done:
    st.i32.global r0, r6
    ret
}
)";
    constexpr const char* uniform = R"(
kernel @uni params 1 regs 16 shared 0 local 0 {
entry:
    r1 = laneid
    r3 = cmp.ge.i32 r1, 0
    r5 = mov 0
    br loop
loop:
    brc r3, a, b
a:
    r6 = add.i32 r5, 1
    br j
b:
    r6 = add.i32 r5, 2
    br j
j:
    r5 = add.i32 r5, 1
    r7 = cmp.lt.i32 r5, 200
    brc r7, loop, done
done:
    st.i32.global r0, r6
    ret
}
)";
    DeviceMemory memA(1 << 20);
    memA.alloc(64);
    const auto a = launchKernel(p100(), memA, compile(divergent), {1, 32},
                                {0});
    DeviceMemory memB(1 << 20);
    memB.alloc(64);
    const auto b = launchKernel(p100(), memB, compile(uniform), {1, 32},
                                {0});
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_GT(a.stats.divergences, 100u);
    EXPECT_EQ(b.stats.divergences, 0u);
    EXPECT_GT(a.stats.cycles, b.stats.cycles);
}

TEST(Timing, MoreBlocksMoreTime)
{
    const auto dev = p100();
    const double t1 = simMs(kCoalesced, {dev.smCount, 256}, dev);
    const double t4 = simMs(kCoalesced, {dev.smCount * 16, 256}, dev);
    EXPECT_GT(t4, t1 * 4);
}

TEST(Timing, ProfilerCountsPerSourceLocation)
{
    ir::Module mod;
    ir::IRBuilder b(mod);
    b.startKernel("k", 1);
    b.block("entry");
    b.setLoc("app.cu:1");
    const auto t = b.tid();
    b.setLoc("app.cu:2");
    const auto x = b.iadd(t, b.imm(1));
    const auto y = b.iadd(x, b.imm(2));
    b.setLoc("");
    b.st(ir::MemSpace::Global, ir::MemWidth::I32, b.param(0), y);
    b.ret();

    DeviceMemory mem(1 << 16);
    mem.alloc(64);
    const auto prog = Program::decode(mod.function(0));
    const auto res = launchKernel(p100(), mem, prog, {2, 32}, {0}, true);
    ASSERT_TRUE(res.ok());
    const auto loc1 = mod.internLoc("app.cu:1");
    const auto loc2 = mod.internLoc("app.cu:2");
    EXPECT_EQ(res.stats.locIssues.at(loc1), 2u); // tid x 2 blocks
    EXPECT_EQ(res.stats.locIssues.at(loc2), 4u); // 2 adds x 2 blocks
}

TEST(Timing, DeterministicAcrossRuns)
{
    DeviceMemory memA(1 << 20);
    memA.alloc(1 << 16);
    DeviceMemory memB(1 << 20);
    memB.alloc(1 << 16);
    const auto prog = compile(kCoalesced);
    const auto a = launchKernel(p100(), memA, prog, {16, 128}, {0});
    const auto b = launchKernel(p100(), memB, prog, {16, 128}, {0});
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.warpInstrs, b.stats.warpInstrs);
}

} // namespace
} // namespace gevo::sim
