/// Differential testing of the trace interpreter against the reference
/// per-instruction interpreter (GEVO_SIM_REFPATH): both paths must
/// produce bit-identical LaunchStats, memory contents, and fault
/// kind/detail on every kernel shape — uniform ALU chains (the
/// scalarization fast path), divergence, partial warps, shared/global/
/// local memory, atomics, warp intrinsics, faults, profiling, and
/// block-parallel launches — plus the real application kernels and the
/// whole-search trajectory at threads 1/4.

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "apps/adept/driver.h"
#include "apps/adept/fitness.h"
#include "apps/adept/kernels.h"
#include "apps/simcov/config.h"
#include "apps/simcov/driver.h"
#include "apps/simcov/kernels.h"
#include "core/engine.h"
#include "mutation/edit.h"
#include "sim_test_util.h"

namespace gevo::sim {
namespace {

using ModeGuard = testutil::InterpModeGuard;
using testutil::compile;
using testutil::expectStatsEqual;

/// Run \p prog under both interpreters on identically-prepared memory and
/// assert bit-identical results, stats, faults, and final memory images.
void
expectIdentical(const Program& prog, LaunchDims dims,
                const std::vector<std::uint64_t>& args,
                const DeviceConfig& dev = p100(), bool profile = false,
                std::int64_t arenaBytes = 1 << 18,
                std::int64_t allocBytes = 1 << 16)
{
    DeviceMemory memT(arenaBytes);
    DeviceMemory memR(arenaBytes);
    memT.alloc(allocBytes);
    memR.alloc(allocBytes);

    LaunchResult trace;
    LaunchResult ref;
    {
        ModeGuard g(InterpMode::Trace);
        trace = launchKernel(dev, memT, prog, dims, args, profile);
    }
    {
        ModeGuard g(InterpMode::Reference);
        ref = launchKernel(dev, memR, prog, dims, args, profile);
    }
    EXPECT_EQ(trace.fault.kind, ref.fault.kind)
        << trace.fault.detail << " vs " << ref.fault.detail;
    EXPECT_EQ(trace.fault.detail, ref.fault.detail);
    expectStatsEqual(trace.stats, ref.stats);
    EXPECT_EQ(0, std::memcmp(memT.raw(), memR.raw(),
                             static_cast<std::size_t>(memT.capacity())));
}

// ---- scalarization fast path: uniform loop counters and addresses ----

TEST(TraceInterp, UniformAluChainAndLoopCounter)
{
    // Everything except the final store address is warp-uniform: the
    // counter, the comparisons, the accumulator. The scalarized path must
    // still time and count identically.
    constexpr const char* text = R"(
kernel @uni params 1 regs 16 shared 0 local 0 {
entry:
    r1 = mov 0
    r2 = mov 0
    br loop
loop:
    r2 = add.i32 r2, 3
    r3 = mul.i32 r2, 5
    r4 = sub.i32 r3, r2
    r1 = add.i32 r1, 1
    r5 = cmp.lt.i32 r1, 50
    brc r5, loop, done
done:
    r6 = tid
    r7 = cvt.i32.i64 r6
    r8 = mul.i64 r7, 4
    r9 = add.i64 r0, r8
    st.i32.global r9, r4
    ret
}
)";
    const auto prog = compile(text);
    expectIdentical(prog, {4, 64}, {0});
    expectIdentical(prog, {4, 64}, {0}, v100());
}

TEST(TraceInterp, MixedUniformAndLaneOperands)
{
    // Uniform x lane-varying products: the per-lane fallback with hoisted
    // scalar views.
    constexpr const char* text = R"(
kernel @mixed params 2 regs 16 shared 0 local 0 {
entry:
    r2 = tid
    r3 = ntid
    r4 = bid
    r5 = mul.i32 r4, r3
    r6 = add.i32 r5, r2
    r7 = mul.i32 r6, 7
    r8 = add.i32 r7, r5
    r9 = cvt.i32.i64 r8
    r10 = and r9, 255
    r11 = mul.i64 r10, 4
    r12 = add.i64 r0, r11
    st.i32.global r12, r8
    ret
}
)";
    const auto prog = compile(text);
    expectIdentical(prog, {8, 128}, {0, 9});
}

TEST(TraceInterp, PartialWarpsNeverClaimFullUniformity)
{
    // blockDim 48: one full warp plus a 16-lane warp; blockDim 1: the
    // degenerate single-lane warp. Both must match the reference exactly.
    constexpr const char* text = R"(
kernel @partial params 1 regs 16 shared 0 local 0 {
entry:
    r1 = tid
    r2 = mov 11
    r3 = add.i32 r2, 4
    r4 = add.i32 r1, r3
    r5 = cvt.i32.i64 r1
    r6 = mul.i64 r5, 4
    r7 = add.i64 r0, r6
    st.i32.global r7, r4
    ret
}
)";
    const auto prog = compile(text);
    expectIdentical(prog, {2, 48}, {0});
    expectIdentical(prog, {2, 1}, {0});
    expectIdentical(prog, {3, 33}, {0});
}

// ---- divergence and reconvergence ----

TEST(TraceInterp, DivergentLoopTrips)
{
    constexpr const char* text = R"(
kernel @divloop params 1 regs 24 shared 0 local 0 {
entry:
    r1 = tid
    r2 = rem.i32 r1, 5
    r3 = mov 0
    r4 = mov 0
    br header
header:
    r4 = add.i32 r4, r1
    r3 = add.i32 r3, 1
    r5 = cmp.le.i32 r3, r2
    brc r5, header, exit
exit:
    r6 = cvt.i32.i64 r1
    r7 = mul.i64 r6, 4
    r8 = add.i64 r0, r7
    st.i32.global r8, r4
    ret
}
)";
    const auto prog = compile(text);
    expectIdentical(prog, {2, 64}, {0});
}

TEST(TraceInterp, NestedDivergenceWithUniformInnerBranch)
{
    // The outer branch diverges; the inner branch is uniform *within*
    // each side — exercising the uniform-CondBr shortcut under a partial
    // active mask.
    constexpr const char* text = R"(
kernel @nested params 1 regs 24 shared 0 local 0 {
entry:
    r1 = tid
    r2 = rem.i32 r1, 2
    r3 = cmp.eq.i32 r2, 0
    r10 = mov 0
    brc r3, evens, odds
evens:
    r4 = mov 1
    r5 = cmp.gt.i32 r4, 0
    brc r5, etrue, efalse
etrue:
    r10 = mov 100
    br join
efalse:
    r10 = mov 200
    br join
odds:
    r10 = mov 300
    br join
join:
    r6 = cvt.i32.i64 r1
    r7 = mul.i64 r6, 4
    r8 = add.i64 r0, r7
    st.i32.global r8, r10
    ret
}
)";
    const auto prog = compile(text);
    expectIdentical(prog, {1, 64}, {0});
}

// ---- memory: shared, local, atomics, coalescing ----

TEST(TraceInterp, SharedMemoryConflictsAndBarrier)
{
    constexpr const char* text = R"(
kernel @smem params 1 regs 24 shared 4096 local 0 {
entry:
    r1 = tid
    r2 = mul.i32 r1, 128
    r3 = cvt.i32.i64 r2
    st.i32.shared r3, r1
    bar.sync
    r4 = mul.i32 r1, 4
    r5 = cvt.i32.i64 r4
    r6 = ld.i32.shared r5
    r7 = cvt.i32.i64 r1
    r8 = mul.i64 r7, 4
    r9 = add.i64 r0, r8
    st.i32.global r9, r6
    ret
}
)";
    const auto prog = compile(text);
    expectIdentical(prog, {2, 32}, {0});
}

TEST(TraceInterp, UniformAddressLoadAndStoreBroadcast)
{
    // Same shared/global address for every lane: load broadcasts, the
    // same-address store serializes in the timing model. The uniform
    // shortcut must preserve both the stats and the memory image.
    constexpr const char* text = R"(
kernel @sameaddr params 1 regs 16 shared 256 local 0 {
entry:
    r1 = mov 3
    st.i32.shared 16, r1
    r2 = ld.i32.shared 16
    st.i32.global r0, r2
    r3 = ld.i32.global r0
    r4 = tid
    r5 = add.i32 r3, r4
    r6 = cvt.i32.i64 r5
    st.i32.shared 32, r6
    ret
}
)";
    const auto prog = compile(text);
    expectIdentical(prog, {2, 64}, {256});
}

TEST(TraceInterp, LocalMemoryIsPerThreadDespiteUniformAddress)
{
    // A uniform local address still touches 32 distinct backing slots —
    // the uniform load/store shortcut must not fire for Local space.
    constexpr const char* text = R"(
kernel @localmem params 1 regs 16 shared 0 local 64 {
entry:
    r1 = tid
    st.i32.local 8, r1
    r2 = ld.i32.local 8
    r3 = cvt.i32.i64 r2
    r4 = mul.i64 r3, 4
    r5 = add.i64 r0, r4
    st.i32.global r5, r2
    ret
}
)";
    const auto prog = compile(text);
    expectIdentical(prog, {2, 64}, {0});
}

TEST(TraceInterp, AtomicsSharedAndGlobal)
{
    constexpr const char* text = R"(
kernel @atomics params 1 regs 24 shared 256 local 0 {
entry:
    r1 = tid
    r2 = atom.add.i32.shared 0, 1
    r3 = atom.max.i32.shared 8, r1
    r4 = atom.add.i32.global r0, r2
    r5 = rem.i32 r1, 2
    r6 = atom.cas.i32.shared 16, r5, r1
    r7 = cvt.i32.i64 r1
    r8 = mul.i64 r7, 4
    r9 = add.i64 r0, r8
    st.i32.global r9, r6
    ret
}
)";
    const auto prog = compile(text);
    expectIdentical(prog, {2, 64}, {4096});
}

// ---- warp intrinsics ----

TEST(TraceInterp, BallotShflActiveMaskBothArchs)
{
    constexpr const char* text = R"(
kernel @warpops params 1 regs 24 shared 0 local 0 {
entry:
    r1 = laneid
    r2 = activemask
    r3 = rem.i32 r1, 2
    r4 = ballot r2, r3
    r5 = shfl.idx r2, r1, 0
    r6 = shfl.up r2, r4, 1
    r7 = add.i32 r5, r6
    r8 = cvt.i32.i64 r1
    r9 = mul.i64 r8, 4
    r10 = add.i64 r0, r9
    st.i32.global r10, r7
    ret
}
)";
    const auto prog = compile(text);
    expectIdentical(prog, {1, 32}, {0}, p100());
    expectIdentical(prog, {1, 32}, {0}, v100());
}

TEST(TraceInterp, LaneVaryingShflMaskUsesEachLanesOwnValue)
{
    // The shfl mask register differs per lane (only lane 31 names any
    // source lanes): each lane's source-validity test must use its own
    // mask value — lanes 0-30 fall back to their own value, lane 31
    // shuffles in lane 0's. The fault check still sees the highest
    // active lane's mask, exactly like the reference loop.
    constexpr const char* text = R"(
kernel @lanemask params 1 regs 16 shared 0 local 0 {
entry:
    r1 = laneid
    r2 = cmp.eq.i32 r1, 31
    r3 = select r2, -1, 0
    r4 = shfl.idx r3, r1, 0
    r5 = cvt.i32.i64 r1
    r6 = mul.i64 r5, 4
    r7 = add.i64 r0, r6
    st.i32.global r7, r4
    ret
}
)";
    const auto prog = compile(text);
    expectIdentical(prog, {1, 32}, {0}, p100());
    expectIdentical(prog, {1, 32}, {0}, v100());
}

TEST(TraceInterp, UniformShflValueStillChecksSyncMask)
{
    // shfl of a warp-invariant value under a stale mask: Pascal
    // tolerates it, Volta faults — identically on both interpreters.
    constexpr const char* text = R"(
kernel @staleshfl params 1 regs 16 shared 0 local 0 {
entry:
    r1 = laneid
    r2 = cmp.lt.i32 r1, 16
    r3 = mov 7
    brc r2, low, high
low:
    r4 = shfl.idx -1, r3, 0
    st.i32.global r0, r4
    br join
high:
    br join
join:
    ret
}
)";
    const auto prog = compile(text);
    expectIdentical(prog, {1, 32}, {0}, p100());
    expectIdentical(prog, {1, 32}, {0}, v100());
}

// ---- dense active-lane packing (sparse masks) ----

/// Run \p prog three ways — dense-packed trace, legacy (full-width)
/// trace, and the reference interpreter — and assert all three produce
/// bit-identical stats, faults, and memory images. This is the oracle
/// for the sparse-mask gather: packing may only change how the lane loop
/// iterates, never what it computes or counts.
void
expectDenseIdentical(const Program& prog, LaunchDims dims,
                     const std::vector<std::uint64_t>& args,
                     const DeviceConfig& dev = p100(), bool profile = false)
{
    DeviceMemory memD(1 << 18);
    DeviceMemory memL(1 << 18);
    DeviceMemory memR(1 << 18);
    memD.alloc(1 << 16);
    memL.alloc(1 << 16);
    memR.alloc(1 << 16);

    LaunchResult dense;
    LaunchResult legacy;
    LaunchResult ref;
    {
        ModeGuard g(InterpMode::Trace);
        {
            testutil::DenseLaneGuard d(true);
            dense = launchKernel(dev, memD, prog, dims, args, profile);
        }
        {
            testutil::DenseLaneGuard d(false);
            legacy = launchKernel(dev, memL, prog, dims, args, profile);
        }
    }
    {
        ModeGuard g(InterpMode::Reference);
        ref = launchKernel(dev, memR, prog, dims, args, profile);
    }
    EXPECT_EQ(dense.fault.kind, legacy.fault.kind)
        << dense.fault.detail << " vs " << legacy.fault.detail;
    EXPECT_EQ(dense.fault.detail, legacy.fault.detail);
    EXPECT_EQ(dense.fault.kind, ref.fault.kind)
        << dense.fault.detail << " vs " << ref.fault.detail;
    expectStatsEqual(dense.stats, legacy.stats);
    expectStatsEqual(dense.stats, ref.stats);
    EXPECT_EQ(0, std::memcmp(memD.raw(), memL.raw(),
                             static_cast<std::size_t>(memD.capacity())));
    EXPECT_EQ(0, std::memcmp(memD.raw(), memR.raw(),
                             static_cast<std::size_t>(memD.capacity())));
}

/// Kernel where only lanes passing a laneid guard run a per-lane loop;
/// \p guard is the comparison line deciding who stays active. Inactive
/// lanes' registers (r5/r6/r7 stay 0) must survive untouched — the final
/// store writes them back so any clobber shows in the memory diff.
Program
sparseGuardKernel(const std::string& guard)
{
    const std::string text = R"(
kernel @sparse params 1 regs 24 shared 0 local 0 {
entry:
    r1 = laneid
    r2 = tid
)" + guard + R"(
    r4 = mov 0
    r5 = mov 0
    brc r3, header, exit
header:
    r5 = add.i32 r5, r2
    r6 = mul.i32 r5, 3
    r7 = add.i32 r6, r1
    r4 = add.i32 r4, 1
    r8 = cmp.lt.i32 r4, 17
    brc r8, header, exit
exit:
    r9 = cvt.i32.i64 r2
    r10 = mul.i64 r9, 4
    r11 = add.i64 r0, r10
    st.i32.global r11, r7
    ret
}
)";
    return testutil::compile(text.c_str());
}

TEST(DenseLanes, SparseMasksOfOneThreeAnd31Lanes)
{
    // 1 active lane (the degenerate case), 3 scattered lanes, and 31
    // lanes (one hole — nearly full but still off the full-mask legacy
    // shortcut).
    expectDenseIdentical(sparseGuardKernel("    r3 = cmp.eq.i32 r1, 5"),
                         {2, 64}, {0});
    expectDenseIdentical(
        sparseGuardKernel("    r12 = rem.i32 r1, 11\n"
                          "    r3 = cmp.eq.i32 r12, 0"),
        {2, 64}, {0});
    expectDenseIdentical(sparseGuardKernel("    r3 = cmp.ne.i32 r1, 17"),
                         {2, 64}, {0});
}

TEST(DenseLanes, MaskChangesMidLoop)
{
    // Lanes drop out of the loop at different trip counts, so the span
    // mask shrinks as the loop runs: the ActiveSet must be re-gathered
    // per span, never cached across a mask change.
    constexpr const char* text = R"(
kernel @shrink params 1 regs 24 shared 0 local 0 {
entry:
    r1 = tid
    r2 = rem.i32 r1, 9
    r3 = mov 0
    r4 = mov 0
    br header
header:
    r4 = add.i32 r4, r1
    r5 = mul.i32 r4, 3
    r3 = add.i32 r3, 1
    r6 = cmp.le.i32 r3, r2
    brc r6, header, exit
exit:
    r7 = cvt.i32.i64 r1
    r8 = mul.i64 r7, 4
    r9 = add.i64 r0, r8
    st.i32.global r9, r5
    ret
}
)";
    expectDenseIdentical(testutil::compile(text), {2, 64}, {0});
}

TEST(DenseLanes, AtomicsUnderDensePacking)
{
    // Atomic application order is lane order; the packed ActiveSet walks
    // lanes ascending, so results must match the full-width loop exactly
    // (including the CAS winner and the returned old values).
    constexpr const char* text = R"(
kernel @spatom params 1 regs 24 shared 256 local 0 {
entry:
    r1 = laneid
    r2 = rem.i32 r1, 5
    r3 = cmp.eq.i32 r2, 1
    brc r3, active, join
active:
    r4 = atom.add.i32.shared 0, 1
    r5 = atom.max.i32.shared 8, r1
    r6 = atom.add.i32.global r0, r4
    r7 = atom.cas.i32.shared 16, 0, r1
    br join
join:
    r8 = cvt.i32.i64 r1
    r9 = mul.i64 r8, 4
    r10 = add.i64 r0, r9
    st.i32.global r10, r7
    ret
}
)";
    expectDenseIdentical(testutil::compile(text), {2, 64}, {4096});
}

TEST(DenseLanes, BallotShflUnderDensePacking)
{
    // ballot must report the sparse mask itself; shfl reads source values
    // from *inactive* lanes (lane 0 is masked off but named as a source),
    // so the 32-wide source gather must survive dense packing.
    constexpr const char* text = R"(
kernel @spwarp params 1 regs 24 shared 0 local 0 {
entry:
    r1 = laneid
    r2 = rem.i32 r1, 3
    r3 = cmp.eq.i32 r2, 2
    brc r3, active, join
active:
    r4 = activemask
    r5 = rem.i32 r1, 2
    r6 = ballot r4, r5
    r7 = shfl.idx r4, r1, 0
    r8 = shfl.up r4, r6, 1
    r9 = add.i32 r7, r8
    br join
join:
    r10 = cvt.i32.i64 r1
    r11 = mul.i64 r10, 4
    r12 = add.i64 r0, r11
    st.i32.global r12, r9
    ret
}
)";
    expectDenseIdentical(testutil::compile(text), {1, 32}, {0}, p100());
    expectDenseIdentical(testutil::compile(text), {1, 32}, {0}, v100());
}

TEST(DenseLanes, SparseMemoryTimingAndProfiledLocs)
{
    // Sparse-mask loads/stores: globalSectors, sharedConflictWays and
    // locIssues are computed by the shared memTiming helper over a
    // zero-initialised addrs[] — inactive lanes must contribute nothing,
    // dense or not. Profiling on, so locIssues is exercised too.
    constexpr const char* text = R"(
kernel @spmem params 1 regs 24 shared 1024 local 0 {
entry:
    r1 = laneid
    r2 = rem.i32 r1, 4
    r3 = cmp.eq.i32 r2, 3
    brc r3, active, join
active:
    r4 = mul.i32 r1, 128 @"sp.cu:12"
    r5 = cvt.i32.i64 r4 @"sp.cu:12"
    st.i32.shared r5, r1 @"sp.cu:13"
    r6 = mul.i32 r1, 4 @"sp.cu:14"
    r7 = cvt.i32.i64 r6
    r8 = ld.i32.shared r7 @"sp.cu:15"
    r9 = cvt.i32.i64 r1
    r10 = mul.i64 r9, 64
    r11 = add.i64 r0, r10
    st.i32.global r11, r8 @"sp.cu:16"
    br join
join:
    ret
}
)";
    expectDenseIdentical(testutil::compile(text), {2, 64}, {0}, p100(),
                         true);
}

// ---- faults ----

TEST(TraceInterp, FaultsMatchBitForBit)
{
    // Global OOB via a uniform address, shared OOB via lane addresses,
    // barrier under divergence, and the instruction-budget timeout.
    constexpr const char* globalOob = R"(
kernel @goob params 1 regs 16 shared 0 local 0 {
entry:
    r1 = ld.i32.global 99999999
    st.i32.global r0, r1
    ret
}
)";
    expectIdentical(compile(globalOob), {2, 64}, {0});

    constexpr const char* sharedOob = R"(
kernel @soob params 1 regs 16 shared 64 local 0 {
entry:
    r1 = tid
    r2 = mul.i32 r1, 8
    r3 = cvt.i32.i64 r2
    st.i32.shared r3, r1
    ret
}
)";
    expectIdentical(compile(sharedOob), {1, 64}, {0});

    constexpr const char* barDiv = R"(
kernel @bdiv params 1 regs 16 shared 0 local 0 {
entry:
    r1 = laneid
    r2 = cmp.lt.i32 r1, 7
    brc r2, a, b
a:
    bar.sync
    br join
b:
    br join
join:
    ret
}
)";
    expectIdentical(compile(barDiv), {1, 32}, {0});

    constexpr const char* spin = R"(
kernel @spin params 1 regs 16 shared 0 local 0 {
entry:
    r1 = mov 0
    br loop
loop:
    r1 = add.i32 r1, 1
    r2 = cmp.ge.i32 r1, 0
    brc r2, loop, done
done:
    ret
}
)";
    auto tiny = p100();
    tiny.maxInstrPerThread = 1000;
    expectIdentical(compile(spin), {1, 32}, {0}, tiny);
}

// ---- profiling and block-parallel launches ----

TEST(TraceInterp, ProfiledLocIssuesIdentical)
{
    constexpr const char* text = R"(
kernel @prof params 1 regs 16 shared 0 local 0 {
entry:
    r1 = tid @"k.cu:10"
    r2 = mov 5 @"k.cu:10"
    r3 = add.i32 r1, r2 @"k.cu:20"
    r4 = cvt.i32.i64 r3 @"k.cu:20"
    st.i32.global r0, r4
    ret
}
)";
    const auto prog = compile(text);
    expectIdentical(prog, {4, 64}, {0}, p100(), true);
}

TEST(TraceInterp, BlockParallelLaunchesIdentical)
{
    constexpr const char* text = R"(
kernel @bp params 1 regs 24 shared 512 local 0 {
entry:
    r1 = tid
    r2 = bid
    r3 = mov 0
    br loop
loop:
    r3 = add.i32 r3, r2
    r4 = add.i32 r3, 1
    r5 = cmp.lt.i32 r3, 40
    brc r5, loop, done
done:
    r6 = mul.i32 r1, 4
    r7 = cvt.i32.i64 r6
    st.i32.shared r7, r4
    bar.sync
    r8 = ld.i32.shared r7
    r9 = ntid
    r10 = mul.i32 r2, r9
    r11 = add.i32 r10, r1
    r12 = cvt.i32.i64 r11
    r13 = mul.i64 r12, 4
    r14 = add.i64 r0, r13
    st.i32.global r14, r8
    ret
}
)";
    const auto prog = compile(text);
    for (std::uint32_t bt : {1u, 4u})
        expectIdentical(prog, {8, 64, 1, bt}, {0});
}

// ---- application kernels ----

TEST(TraceInterp, AdeptDriversIdenticalBothVersions)
{
    adept::SequenceSetConfig cfg;
    cfg.numPairs = 4;
    cfg.minLen = 24;
    cfg.maxLen = 48;
    cfg.seed = 9;
    const auto pairs = adept::generatePairs(cfg);
    for (int version : {0, 1}) {
        const auto built =
            version == 0 ? adept::buildAdeptV0(adept::ScoringParams{}, 64)
                         : adept::buildAdeptV1(adept::ScoringParams{}, 64);
        const adept::AdeptDriver driver(pairs, adept::ScoringParams{},
                                        version, 64);
        adept::AdeptRunOutput trace;
        adept::AdeptRunOutput ref;
        {
            ModeGuard g(InterpMode::Trace);
            trace = driver.run(built.module, p100(), true);
        }
        {
            ModeGuard g(InterpMode::Reference);
            ref = driver.run(built.module, p100(), true);
        }
        ASSERT_EQ(trace.ok(), ref.ok()) << "version " << version;
        EXPECT_EQ(trace.totalMs, ref.totalMs);
        expectStatsEqual(trace.fwdStats, ref.fwdStats);
        expectStatsEqual(trace.revStats, ref.revStats);
        ASSERT_EQ(trace.results.size(), ref.results.size());
        for (std::size_t i = 0; i < trace.results.size(); ++i)
            EXPECT_TRUE(trace.results[i] == ref.results[i]);
    }
}

TEST(TraceInterp, SimcovDriverIdentical)
{
    simcov::SimcovConfig cfg;
    cfg.gridW = 16;
    cfg.steps = 5;
    const simcov::SimcovDriver driver(cfg);
    const auto built = simcov::buildSimcov(cfg);
    simcov::SimcovRunOutput trace;
    simcov::SimcovRunOutput ref;
    {
        ModeGuard g(InterpMode::Trace);
        trace = driver.run(built.module, p100(), true);
    }
    {
        ModeGuard g(InterpMode::Reference);
        ref = driver.run(built.module, p100(), true);
    }
    ASSERT_EQ(trace.ok(), ref.ok());
    EXPECT_EQ(trace.totalMs, ref.totalMs);
    expectStatsEqual(trace.aggregate, ref.aggregate);
    ASSERT_EQ(trace.series.size(), ref.series.size());
    for (std::size_t i = 0; i < trace.series.size(); ++i) {
        EXPECT_EQ(trace.series[i].totalVirions,
                  ref.series[i].totalVirions);
        EXPECT_EQ(trace.series[i].tcells, ref.series[i].tcells);
        EXPECT_EQ(trace.series[i].infected, ref.series[i].infected);
        EXPECT_EQ(trace.series[i].dead, ref.series[i].dead);
    }
}

TEST(TraceInterp, AdeptAndSimcovDensePackingPreservesProfiledCounters)
{
    // Per-family dense regression for the two app drivers: profiled
    // locIssues and memory-timing counters must be identical with dense
    // packing on and off (adept's anti-diagonal wavefront and simcov's
    // grid guards both leave partial masks).
    ModeGuard m(InterpMode::Trace);
    {
        adept::SequenceSetConfig cfg;
        cfg.numPairs = 3;
        cfg.minLen = 24;
        cfg.maxLen = 40;
        cfg.seed = 7;
        const auto pairs = adept::generatePairs(cfg);
        const auto built = adept::buildAdeptV1(adept::ScoringParams{}, 64);
        const adept::AdeptDriver driver(pairs, adept::ScoringParams{}, 1,
                                        64);
        adept::AdeptRunOutput dense;
        adept::AdeptRunOutput legacy;
        {
            testutil::DenseLaneGuard g(true);
            dense = driver.run(built.module, p100(), true);
        }
        {
            testutil::DenseLaneGuard g(false);
            legacy = driver.run(built.module, p100(), true);
        }
        ASSERT_EQ(dense.ok(), legacy.ok());
        EXPECT_EQ(dense.totalMs, legacy.totalMs);
        expectStatsEqual(dense.fwdStats, legacy.fwdStats);
        expectStatsEqual(dense.revStats, legacy.revStats);
        ASSERT_EQ(dense.results.size(), legacy.results.size());
        for (std::size_t i = 0; i < dense.results.size(); ++i)
            EXPECT_TRUE(dense.results[i] == legacy.results[i]);
    }
    {
        simcov::SimcovConfig cfg;
        cfg.gridW = 16;
        cfg.steps = 4;
        const simcov::SimcovDriver driver(cfg);
        const auto built = simcov::buildSimcov(cfg);
        simcov::SimcovRunOutput dense;
        simcov::SimcovRunOutput legacy;
        {
            testutil::DenseLaneGuard g(true);
            dense = driver.run(built.module, p100(), true);
        }
        {
            testutil::DenseLaneGuard g(false);
            legacy = driver.run(built.module, p100(), true);
        }
        ASSERT_EQ(dense.ok(), legacy.ok());
        EXPECT_EQ(dense.totalMs, legacy.totalMs);
        expectStatsEqual(dense.aggregate, legacy.aggregate);
    }
}

// ---- whole-search trajectory ----

TEST(TraceInterp, SearchTrajectoryIdenticalThreads1And4)
{
    adept::SequenceSetConfig cfg;
    cfg.numPairs = 3;
    cfg.minLen = 24;
    cfg.maxLen = 40;
    cfg.seed = 4;
    const auto pairs = adept::generatePairs(cfg);
    const auto built = adept::buildAdeptV0(adept::ScoringParams{}, 64);
    const adept::AdeptDriver driver(pairs, adept::ScoringParams{}, 0, 64);
    adept::AdeptFitness fitness(driver, sim::p100());

    auto search = [&](InterpMode mode, std::uint32_t threads) {
        ModeGuard g(mode);
        core::EvolutionParams params;
        params.populationSize = 8;
        params.generations = 2;
        params.seed = 123;
        params.threads = threads;
        core::EvolutionEngine engine(built.module, fitness, params);
        return engine.run();
    };
    const auto base = search(InterpMode::Trace, 1);
    for (std::uint32_t threads : {1u, 4u}) {
        const auto ref = search(InterpMode::Reference, threads);
        EXPECT_EQ(mut::serializeEdits(base.best.edits),
                  mut::serializeEdits(ref.best.edits))
            << "threads " << threads;
        ASSERT_EQ(base.history.size(), ref.history.size());
        for (std::size_t g = 0; g < base.history.size(); ++g)
            EXPECT_EQ(base.history[g].bestMs, ref.history[g].bestMs);
    }
    const auto trace4 = search(InterpMode::Trace, 4);
    EXPECT_EQ(mut::serializeEdits(base.best.edits),
              mut::serializeEdits(trace4.best.edits));
}

} // namespace
} // namespace gevo::sim
