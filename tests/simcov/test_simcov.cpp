#include <gtest/gtest.h>

#include "apps/simcov/cpu_model.h"
#include "apps/simcov/driver.h"
#include "apps/simcov/fitness.h"
#include "apps/simcov/golden_edits.h"
#include "core/fitness.h"
#include "ir/verifier.h"
#include "mutation/patch.h"
#include "opt/passes.h"
#include "sim/device_config.h"

namespace gevo::simcov {
namespace {

SimcovConfig
smallConfig()
{
    SimcovConfig cfg;
    cfg.gridW = 32;
    cfg.steps = 20;
    return cfg;
}

TEST(SimcovCpu, DeterministicAcrossRuns)
{
    const auto cfg = smallConfig();
    const auto a = runCpuModel(cfg);
    const auto b = runCpuModel(cfg);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t s = 0; s < a.size(); ++s) {
        EXPECT_EQ(a[s].totalVirions, b[s].totalVirions);
        EXPECT_EQ(a[s].tcells, b[s].tcells);
    }
}

TEST(SimcovCpu, InfectionSpreadsAndKillsCells)
{
    auto cfg = smallConfig();
    cfg.steps = 30;
    const auto series = runCpuModel(cfg);
    // The infection must take hold: virions grow from the seeded site,
    // cells die, T cells eventually arrive.
    EXPECT_GT(series.back().totalVirions, 0.0f);
    EXPECT_GT(series.back().dead, 0);
    EXPECT_GT(series.back().tcells, 0);
    EXPECT_GT(series.back().totalChemokine, 0.0f);
}

TEST(SimcovCpu, DifferentSeedsDiverge)
{
    auto cfg = smallConfig();
    auto cfg2 = cfg;
    cfg2.seed = cfg.seed + 1;
    const auto a = runCpuModel(cfg);
    const auto b = runCpuModel(cfg2);
    bool anyDiff = false;
    for (std::size_t s = 0; s < a.size() && !anyDiff; ++s)
        anyDiff = a[s].tcells != b[s].tcells ||
                  a[s].infected != b[s].infected;
    EXPECT_TRUE(anyDiff);
}

TEST(SimcovKernels, ModuleVerifiesAndHasEightKernels)
{
    const auto built = buildSimcov(smallConfig());
    const auto res = ir::verifyModule(built.module);
    EXPECT_TRUE(res.ok()) << res.message();
    EXPECT_EQ(built.module.numFunctions(), 8u);
}

TEST(SimcovKernels, GpuMatchesCpuExactly)
{
    const auto cfg = smallConfig();
    const auto built = buildSimcov(cfg);
    const SimcovDriver driver(cfg);
    for (const auto& dev : sim::allDevices()) {
        const auto out = driver.run(built.module, dev);
        ASSERT_TRUE(out.ok()) << dev.name << ": " << out.fault.detail;
        ASSERT_EQ(out.series.size(), driver.expected().size());
        for (std::size_t s = 0; s < out.series.size(); ++s) {
            EXPECT_EQ(out.series[s].totalVirions,
                      driver.expected()[s].totalVirions)
                << dev.name << " step " << s;
            EXPECT_EQ(out.series[s].totalChemokine,
                      driver.expected()[s].totalChemokine);
            EXPECT_EQ(out.series[s].tcells, driver.expected()[s].tcells);
            EXPECT_EQ(out.series[s].infected,
                      driver.expected()[s].infected);
            EXPECT_EQ(out.series[s].dead, driver.expected()[s].dead);
        }
    }
}

TEST(SimcovKernels, PaddedVariantMatchesBaselineExactly)
{
    const auto cfg = smallConfig();
    const auto padded = buildSimcov(cfg, true);
    const SimcovDriver driver(cfg, true);
    const auto out = driver.run(padded.module, sim::p100());
    ASSERT_TRUE(out.ok()) << out.fault.detail;
    for (std::size_t s = 0; s < out.series.size(); ++s) {
        EXPECT_EQ(out.series[s].totalVirions,
                  driver.expected()[s].totalVirions)
            << "step " << s;
        EXPECT_EQ(out.series[s].tcells, driver.expected()[s].tcells);
    }
}

TEST(SimcovKernels, PaddedVariantIsFaster)
{
    const auto cfg = smallConfig();
    const auto base = buildSimcov(cfg);
    const auto padded = buildSimcov(cfg, true);
    const SimcovDriver bd(cfg);
    const SimcovDriver pd(cfg, true);
    const auto ob = bd.run(base.module, sim::p100());
    const auto op = pd.run(padded.module, sim::p100());
    ASSERT_TRUE(ob.ok());
    ASSERT_TRUE(op.ok());
    // Paper Sec VI-D: padding buys ~14%.
    EXPECT_GT(ob.totalMs / op.totalMs, 1.08);
    EXPECT_LT(ob.totalMs / op.totalMs, 1.35);
}

TEST(SimcovGolden, BoundaryRemovalPassesAndSpeedsUpSmallGrid)
{
    const auto cfg = smallConfig();
    const auto built = buildSimcov(cfg);
    const SimcovDriver driver(cfg);
    SimcovFitness fitness(driver, sim::p100());
    const auto base = core::evaluateVariant(built.module, {}, fitness);
    ASSERT_TRUE(base.valid) << base.failReason;
    const auto bnd = core::evaluateVariant(
        built.module, editsOf(boundaryCheckEdits(built)), fitness);
    ASSERT_TRUE(bnd.valid) << bnd.failReason;
    // Paper Sec VI-D: ~20% improvement from boundary-check removal.
    EXPECT_GT(base.ms() / bnd.ms(), 1.12);
    EXPECT_LT(base.ms() / bnd.ms(), 1.40);
}

TEST(SimcovGolden, AllGoldenEditsReachPaperBallpark)
{
    const auto cfg = smallConfig();
    const auto built = buildSimcov(cfg);
    const SimcovDriver driver(cfg);
    SimcovFitness fitness(driver, sim::p100());
    const auto base = core::evaluateVariant(built.module, {}, fitness);
    const auto all = core::evaluateVariant(
        built.module, editsOf(allGoldenEdits(built)), fitness);
    ASSERT_TRUE(all.valid) << all.failReason;
    // Paper Fig 5: 1.29x on the P100.
    EXPECT_GT(base.ms() / all.ms(), 1.15);
    EXPECT_LT(base.ms() / all.ms(), 1.45);
}

TEST(SimcovGolden, BoundaryRemovalFaultsOnLargeTightGrid)
{
    // Paper Sec VI-D / Fig 10(b): the same variant that passes the small
    // fitness grid segfaults on the held-out large grid.
    SimcovConfig big;
    big.gridW = 96;
    big.steps = 2;
    const auto built = buildSimcov(big);
    const SimcovDriver driver(big, false, /*tightArena=*/true);

    const auto baseline = driver.run(built.module, sim::p100());
    ASSERT_TRUE(baseline.ok()) << baseline.fault.detail;

    auto variant = mut::applyPatch(built.module,
                                   editsOf(boundaryCheckEdits(built)));
    opt::runCleanupPipeline(variant);
    const auto out = driver.run(variant, sim::p100());
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.fault.kind, sim::FaultKind::MemOobGlobal);
}

TEST(SimcovGolden, PaddedVariantSurvivesLargeTightGrid)
{
    // Fig 10(c): zero-padding keeps the check-free stencil in bounds.
    SimcovConfig big;
    big.gridW = 96;
    big.steps = 2;
    const auto padded = buildSimcov(big, true);
    const SimcovDriver driver(big, true, /*tightArena=*/true);
    const auto out = driver.run(padded.module, sim::p100());
    EXPECT_TRUE(out.ok()) << out.fault.detail;
}

TEST(SimcovSeries, ToleranceComparatorBehaves)
{
    TimeSeries ref(4);
    for (std::size_t i = 0; i < ref.size(); ++i) {
        ref[i].totalVirions = 100.0f + static_cast<float>(i);
        ref[i].tcells = 10;
    }
    TimeSeries same = ref;
    EXPECT_TRUE(compareSeries(ref, same, {}).empty());

    TimeSeries close = ref;
    for (auto& s : close)
        s.totalVirions *= 1.01f; // within 2% mean
    EXPECT_TRUE(compareSeries(ref, close, {}).empty());

    TimeSeries off = ref;
    for (auto& s : off)
        s.totalVirions *= 1.2f;
    EXPECT_FALSE(compareSeries(ref, off, {}).empty());

    TimeSeries shortSeries(2);
    EXPECT_FALSE(compareSeries(ref, shortSeries, {}).empty());
}

TEST(SimcovFitnessTest, BreakingEditIsRejected)
{
    const auto cfg = smallConfig();
    const auto built = buildSimcov(cfg);
    const SimcovDriver driver(cfg);
    SimcovFitness fitness(driver, sim::p100());
    // Kill virion production: the epidemic never grows -> series way off.
    mut::Edit e;
    e.kind = mut::EditKind::InstrDelete;
    bool found = false;
    for (const auto& bb :
         built.module.findFunction("sc_vdiff")->blocks) {
        for (const auto& in : bb.instrs) {
            if (in.op == ir::Opcode::Store &&
                in.space == ir::MemSpace::Global && !found) {
                e.srcUid = in.uid;
                found = true;
            }
        }
    }
    ASSERT_TRUE(found);
    const auto res = evaluateVariant(built.module, {e}, fitness);
    EXPECT_FALSE(res.valid);
}

} // namespace
} // namespace gevo::simcov
