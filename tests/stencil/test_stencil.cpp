/// Stencil workload: CPU reference properties, kernel-vs-reference
/// differential (bit-exact floats), golden-edit expectations, and
/// trace-vs-refpath interpreter agreement.

#include <gtest/gtest.h>

#include "apps/stencil/driver.h"
#include "apps/stencil/kernels.h"
#include "core/fitness.h"
#include "ir/verifier.h"
#include "sim/device_config.h"

#include "../sim/sim_test_util.h"

namespace gevo::stencil {
namespace {

StencilConfig
smallConfig()
{
    StencilConfig cfg;
    cfg.gridW = 16;
    cfg.steps = 3;
    return cfg;
}

TEST(StencilCpu, DeterministicAndBoundaryHeld)
{
    const auto cfg = smallConfig();
    const auto a = runCpuStencil(cfg);
    const auto b = runCpuStencil(cfg);
    EXPECT_EQ(a, b);

    // Dirichlet boundary: edge cells never change.
    const auto init = initialGrid(cfg);
    const auto W = cfg.gridW;
    for (std::int32_t i = 0; i < cfg.cells(); ++i) {
        const auto x = i % W;
        const auto y = i / W;
        if (x == 0 || x == W - 1 || y == 0 || y == W - 1) {
            EXPECT_EQ(a[static_cast<std::size_t>(i)],
                      init[static_cast<std::size_t>(i)])
                << i;
        }
    }

    // And the interior actually diffuses (the kernel is not a no-op).
    EXPECT_NE(a, init);
}

TEST(StencilKernels, ModuleVerifies)
{
    const auto built = buildStencil(smallConfig());
    const auto res = ir::verifyModule(built.module);
    EXPECT_TRUE(res.ok()) << res.message();
    EXPECT_EQ(built.module.numFunctions(), 1u);
}

TEST(StencilKernels, GpuMatchesCpuExactly)
{
    const auto cfg = smallConfig();
    const auto built = buildStencil(cfg);
    const StencilDriver driver(cfg);
    const auto out = driver.run(built.module, sim::p100());
    ASSERT_TRUE(out.ok()) << out.fault.detail;
    ASSERT_EQ(out.grid.size(), driver.expected().size());
    for (std::size_t i = 0; i < out.grid.size(); ++i)
        EXPECT_EQ(out.grid[i], driver.expected()[i]) << "cell " << i;
}

TEST(StencilGolden, AllEditsPassAndSpeedUp)
{
    const auto cfg = smallConfig();
    const auto built = buildStencil(cfg);
    const StencilDriver driver(cfg);
    const StencilFitness fitness(driver, sim::p100());

    const auto baseline =
        core::evaluateVariant(built.module, {}, fitness);
    ASSERT_TRUE(baseline.valid) << baseline.failReason;

    const auto golden = core::evaluateVariant(
        built.module, editsOf(allGoldenEdits(built)), fitness);
    ASSERT_TRUE(golden.valid) << golden.failReason;
    EXPECT_LT(golden.ms(), baseline.ms());

    // Each planted edit is independently valid and non-degrading.
    for (const auto& named : allGoldenEdits(built)) {
        const auto one =
            core::evaluateVariant(built.module, {named.edit}, fitness);
        EXPECT_TRUE(one.valid) << named.name << ": " << one.failReason;
        EXPECT_LE(one.ms(), baseline.ms()) << named.name;
    }
}

TEST(StencilSim, TraceAndReferenceInterpretersAgree)
{
    const auto cfg = smallConfig();
    const auto built = buildStencil(cfg);
    const StencilDriver driver(cfg);
    StencilRunOutput trace;
    StencilRunOutput ref;
    {
        sim::testutil::InterpModeGuard g(sim::InterpMode::Trace);
        trace = driver.run(built.module, sim::p100(), true);
    }
    {
        sim::testutil::InterpModeGuard g(sim::InterpMode::Reference);
        ref = driver.run(built.module, sim::p100(), true);
    }
    ASSERT_TRUE(trace.ok());
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(trace.totalMs, ref.totalMs);
    EXPECT_EQ(trace.grid, ref.grid);
    sim::testutil::expectStatsEqual(trace.aggregate, ref.aggregate);
}

TEST(StencilSim, DensePackingPreservesProfiledCounters)
{
    // The boundary guard leaves edge lanes masked off, so the stencil
    // hits the dense path: locIssues and memory-timing counters must be
    // identical with packing on and off.
    const auto cfg = smallConfig();
    const auto built = buildStencil(cfg);
    const StencilDriver driver(cfg);
    sim::testutil::InterpModeGuard m(sim::InterpMode::Trace);
    StencilRunOutput dense;
    StencilRunOutput legacy;
    {
        sim::testutil::DenseLaneGuard g(true);
        dense = driver.run(built.module, sim::p100(), true);
    }
    {
        sim::testutil::DenseLaneGuard g(false);
        legacy = driver.run(built.module, sim::p100(), true);
    }
    ASSERT_TRUE(dense.ok());
    ASSERT_TRUE(legacy.ok());
    EXPECT_EQ(dense.totalMs, legacy.totalMs);
    EXPECT_EQ(dense.grid, legacy.grid);
    sim::testutil::expectStatsEqual(dense.aggregate, legacy.aggregate);
}

} // namespace
} // namespace gevo::stencil
