#include "support/flags.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace gevo {
namespace {

Flags
makeFlags(std::vector<std::string> args)
{
    static std::vector<std::string> storage;
    storage = std::move(args);
    storage.insert(storage.begin(), "prog");
    static std::vector<char*> argv;
    argv.clear();
    for (auto& s : storage)
        argv.push_back(s.data());
    return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, IntParsing)
{
    const auto f = makeFlags({"--gens=42"});
    EXPECT_EQ(f.getInt("gens", 7), 42);
    EXPECT_EQ(f.getInt("missing", 7), 7);
}

TEST(Flags, DoubleParsing)
{
    const auto f = makeFlags({"--rate=0.25"});
    EXPECT_DOUBLE_EQ(f.getDouble("rate", 1.0), 0.25);
}

TEST(Flags, StringParsing)
{
    const auto f = makeFlags({"--device=V100"});
    EXPECT_EQ(f.getString("device", "P100"), "V100");
    EXPECT_EQ(f.getString("other", "P100"), "P100");
}

TEST(Flags, BoolForms)
{
    const auto f = makeFlags({"--full", "--quiet=false", "--loud=1"});
    EXPECT_TRUE(f.getBool("full", false));
    EXPECT_FALSE(f.getBool("quiet", true));
    EXPECT_TRUE(f.getBool("loud", false));
    EXPECT_TRUE(f.getBool("absent", true));
}

TEST(Flags, EnvFallback)
{
    ::setenv("GEVO_FROM_ENV", "99", 1);
    const auto f = makeFlags({});
    EXPECT_EQ(f.getInt("from-env", 0), 99);
    ::unsetenv("GEVO_FROM_ENV");
}

TEST(Flags, CommandLineBeatsEnv)
{
    ::setenv("GEVO_PICK", "1", 1);
    const auto f = makeFlags({"--pick=2"});
    EXPECT_EQ(f.getInt("pick", 0), 2);
    ::unsetenv("GEVO_PICK");
}

} // namespace
} // namespace gevo
