#include "support/flags.h"

#include <gtest/gtest.h>

#include <clocale>
#include <cstdint>
#include <cstdlib>

namespace gevo {
namespace {

Flags
makeFlags(std::vector<std::string> args)
{
    static std::vector<std::string> storage;
    storage = std::move(args);
    storage.insert(storage.begin(), "prog");
    static std::vector<char*> argv;
    argv.clear();
    for (auto& s : storage)
        argv.push_back(s.data());
    return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, IntParsing)
{
    const auto f = makeFlags({"--gens=42"});
    EXPECT_EQ(f.getInt("gens", 7), 42);
    EXPECT_EQ(f.getInt("missing", 7), 7);
}

TEST(Flags, DoubleParsing)
{
    const auto f = makeFlags({"--rate=0.25"});
    EXPECT_DOUBLE_EQ(f.getDouble("rate", 1.0), 0.25);
}

TEST(Flags, StringParsing)
{
    const auto f = makeFlags({"--device=V100"});
    EXPECT_EQ(f.getString("device", "P100"), "V100");
    EXPECT_EQ(f.getString("other", "P100"), "P100");
}

TEST(Flags, BoolForms)
{
    const auto f = makeFlags({"--full", "--quiet=false", "--loud=1"});
    EXPECT_TRUE(f.getBool("full", false));
    EXPECT_FALSE(f.getBool("quiet", true));
    EXPECT_TRUE(f.getBool("loud", false));
    EXPECT_TRUE(f.getBool("absent", true));
}

TEST(Flags, EnvFallback)
{
    ::setenv("GEVO_FROM_ENV", "99", 1);
    const auto f = makeFlags({});
    EXPECT_EQ(f.getInt("from-env", 0), 99);
    ::unsetenv("GEVO_FROM_ENV");
}

TEST(Flags, CommandLineBeatsEnv)
{
    ::setenv("GEVO_PICK", "1", 1);
    const auto f = makeFlags({"--pick=2"});
    EXPECT_EQ(f.getInt("pick", 0), 2);
    ::unsetenv("GEVO_PICK");
}

TEST(Flags, HasDetectsExplicitFlagsAndEnv)
{
    const auto f = makeFlags({"--gens=5", "--full"});
    EXPECT_TRUE(f.has("gens"));
    EXPECT_TRUE(f.has("full"));
    EXPECT_FALSE(f.has("pop"));
    ::setenv("GEVO_POP", "9", 1);
    EXPECT_TRUE(f.has("pop"));
    ::unsetenv("GEVO_POP");
}

TEST(Flags, HelpRequested)
{
    EXPECT_TRUE(makeFlags({"--help"}).helpRequested());
    EXPECT_TRUE(makeFlags({"-h"}).helpRequested());
    EXPECT_FALSE(makeFlags({"--gens=3"}).helpRequested());
}

// ---- strict parsing: malformed values are fatal, never coerced ----

TEST(FlagsDeath, MalformedIntIsFatal)
{
    // `--gens=3O` (letter O) used to silently run 3 generations.
    EXPECT_EXIT(makeFlags({"--gens=3O"}).getInt("gens", 1),
                ::testing::ExitedWithCode(1), "expects an integer");
    EXPECT_EXIT(makeFlags({"--gens"}).getInt("gens", 1),
                ::testing::ExitedWithCode(1), "expects an integer");
}

TEST(FlagsDeath, MalformedDoubleIsFatal)
{
    EXPECT_EXIT(makeFlags({"--rate=fast"}).getDouble("rate", 1.0),
                ::testing::ExitedWithCode(1), "expects a number");
}

TEST(FlagsDeath, UnknownBoolFormIsFatal)
{
    // Anything that was not 0/false/no used to silently mean true.
    EXPECT_EXIT(makeFlags({"--quiet=maybe"}).getBool("quiet", false),
                ::testing::ExitedWithCode(1), "expects a boolean");
}

TEST(Flags, IntAcceptsHexAndNegative)
{
    EXPECT_EQ(makeFlags({"--mask=0x10"}).getInt("mask", 0), 16);
    EXPECT_EQ(makeFlags({"--delta=-3"}).getInt("delta", 0), -3);
    EXPECT_EQ(makeFlags({"--delta=+3"}).getInt("delta", 0), 3);
    EXPECT_EQ(makeFlags({"--mask=-0x10"}).getInt("mask", 0), -16);
}

TEST(Flags, IntRoundTripsTheFullRange)
{
    // The extremes parse exactly — strtoll-style silent saturation would
    // also pass these, which is why the overflow death tests below pin
    // the values just past them.
    EXPECT_EQ(makeFlags({"--v=9223372036854775807"}).getInt("v", 0),
              INT64_MAX);
    EXPECT_EQ(makeFlags({"--v=-9223372036854775808"}).getInt("v", 0),
              INT64_MIN);
    EXPECT_EQ(makeFlags({"--v=0"}).getInt("v", 7), 0);
}

TEST(FlagsDeath, IntOverflowIsFatalNotSaturated)
{
    // strtoll would clamp these to INT64_MAX/MIN with only errno to tell;
    // a silently clamped value is exactly what strict parsing exists to
    // stop.
    EXPECT_EXIT(makeFlags({"--v=9223372036854775808"}).getInt("v", 0),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(makeFlags({"--v=-9223372036854775809"}).getInt("v", 0),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(
        makeFlags({"--v=99999999999999999999999999"}).getInt("v", 0),
        ::testing::ExitedWithCode(1), "out of range");
}

TEST(Flags, NumericParsingIgnoresTheGlobalLocale)
{
    // std::strtod honors LC_NUMERIC, so under a comma-decimal locale
    // (de_DE, fr_FR, ...) "--rate=1.5" used to stop parsing at the '.'
    // and die as malformed. Parsing must be locale-independent: '.' is
    // the decimal separator, always, and ',' is never accepted.
    const char* prev = nullptr;
    for (const char* name :
         {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8", "fr_FR.utf8"}) {
        prev = std::setlocale(LC_NUMERIC, name);
        if (prev != nullptr)
            break;
    }
    if (prev == nullptr)
        GTEST_SKIP() << "no comma-decimal locale installed";
    EXPECT_DOUBLE_EQ(makeFlags({"--rate=1.5"}).getDouble("rate", 0.0), 1.5);
    EXPECT_DOUBLE_EQ(makeFlags({"--rate=-0.25"}).getDouble("rate", 0.0),
                     -0.25);
    std::setlocale(LC_NUMERIC, "C");
}

TEST(Flags, DoubleRoundTripsCommonForms)
{
    EXPECT_DOUBLE_EQ(makeFlags({"--v=1e-3"}).getDouble("v", 0.0), 1e-3);
    EXPECT_DOUBLE_EQ(makeFlags({"--v=+2.5"}).getDouble("v", 0.0), 2.5);
    EXPECT_DOUBLE_EQ(makeFlags({"--v=-4"}).getDouble("v", 0.0), -4.0);
}

TEST(Flags, LeadingZeroIsDecimalNotOctal)
{
    // strtoll base 0 parsed "010" as octal 8; a flag value with a padded
    // zero now means what it looks like.
    EXPECT_EQ(makeFlags({"--v=010"}).getInt("v", 0), 10);
    EXPECT_EQ(makeFlags({"--v=007"}).getInt("v", 0), 7);
}

TEST(FlagsDeath, DoubledSignsAreMalformed)
{
    // The manual '+' skip must not open a hole: "+-1" is not -1.
    EXPECT_EXIT(makeFlags({"--v=+-1"}).getDouble("v", 0.0),
                ::testing::ExitedWithCode(1), "expects a number");
    EXPECT_EXIT(makeFlags({"--v=++1"}).getDouble("v", 0.0),
                ::testing::ExitedWithCode(1), "expects a number");
    EXPECT_EXIT(makeFlags({"--v=+-1"}).getInt("v", 0),
                ::testing::ExitedWithCode(1), "expects an integer");
}

TEST(FlagsDeath, CommaDecimalIsAlwaysRejected)
{
    // Uniform behavior on every host: "1,5" is malformed no matter what
    // LC_NUMERIC says.
    EXPECT_EXIT(makeFlags({"--rate=1,5"}).getDouble("rate", 0.0),
                ::testing::ExitedWithCode(1), "expects a number");
}

// ---- enum/choice flags ----

TEST(Flags, ChoiceAcceptsAllowedValuesAndDefault)
{
    const std::vector<std::string> allowed = {"adept-v0", "adept-v1",
                                              "simcov"};
    EXPECT_EQ(makeFlags({"--workload=simcov"})
                  .getChoice("workload", allowed, "adept-v0"),
              "simcov");
    EXPECT_EQ(makeFlags({}).getChoice("workload", allowed, "adept-v0"),
              "adept-v0");
}

TEST(FlagsDeath, ChoiceRejectsUnknownValue)
{
    const std::vector<std::string> allowed = {"a", "b"};
    EXPECT_EXIT(makeFlags({"--mode=c"}).getChoice("mode", allowed, "a"),
                ::testing::ExitedWithCode(1), "not one of \\{a, b\\}");
}

TEST(Flags, UsagePrintsFlagsAndSections)
{
    FlagUsage usage("tool", "does things");
    usage.flag("gens", "<n>", "generations")
        .section("workloads")
        .item("simcov", "epidemic simulation");
    ::testing::internal::CaptureStdout();
    usage.print();
    const auto out = ::testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("--gens=<n>"), std::string::npos);
    EXPECT_NE(out.find("workloads:"), std::string::npos);
    EXPECT_NE(out.find("simcov"), std::string::npos);
    EXPECT_NE(out.find("GEVO_<NAME>"), std::string::npos);
}

} // namespace
} // namespace gevo
