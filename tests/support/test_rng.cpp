#include "support/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace gevo {
namespace {

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(7);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 16; ++i)
        first.push_back(a.next());
    a.reseed(7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), first[i]);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(3);
    for (int bound : {1, 2, 3, 7, 100, 1'000'000}) {
        for (int i = 0; i < 200; ++i) {
            const auto v = r.below(static_cast<std::uint64_t>(bound));
            EXPECT_LT(v, static_cast<std::uint64_t>(bound));
        }
    }
}

TEST(Rng, BelowCoversAllResidues)
{
    Rng r(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(r.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusiveBounds)
{
    Rng r(5);
    bool sawLo = false;
    bool sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo = sawLo || v == -3;
        sawHi = sawHi || v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(9);
    double sum = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ForkIndependentButDeterministic)
{
    Rng parent1(21);
    Rng parent2(21);
    Rng childA = parent1.fork(1);
    Rng childB = parent2.fork(1);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(childA.next(), childB.next());

    Rng parent3(21);
    Rng other = parent3.fork(2);
    Rng childC = Rng(21).fork(1);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += other.next() == childC.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, StateRoundTripResumesMidStream)
{
    // Checkpoint/resume depends on this: capture a stream mid-flight,
    // restore it into a fresh generator, and the continuation must be
    // bit-identical to the uninterrupted stream.
    Rng original(17);
    for (int i = 0; i < 37; ++i)
        original.next();
    const auto snapshot = original.state();

    Rng resumed(999); // Arbitrary seed, fully overwritten below.
    resumed.setState(snapshot);
    Rng uninterrupted(17);
    for (int i = 0; i < 37; ++i)
        uninterrupted.next();
    for (int i = 0; i < 256; ++i)
        EXPECT_EQ(resumed.next(), uninterrupted.next());
}

} // namespace
} // namespace gevo
