#include "support/stats.h"

#include <gtest/gtest.h>

namespace gevo {
namespace {

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStat, SingleValue)
{
    RunningStat s;
    s.push(4.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 4.5);
    EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStat, KnownMoments)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.push(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0); // classic population-variance set
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, NegativeValues)
{
    RunningStat s;
    s.push(-10.0);
    s.push(10.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), -10.0);
    EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(Summarize, MatchesRunningStat)
{
    const std::vector<double> xs = {1, 2, 3, 4, 5};
    const Summary s = summarize(xs);
    EXPECT_EQ(s.count, 5u);
    EXPECT_DOUBLE_EQ(s.mean, 3.0);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 5.0);
    EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);
}

TEST(Summarize, Empty)
{
    const Summary s = summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(RelativeDiff, Basics)
{
    EXPECT_DOUBLE_EQ(relativeDiff(110.0, 100.0), 0.1);
    EXPECT_DOUBLE_EQ(relativeDiff(90.0, 100.0), 0.1);
    EXPECT_DOUBLE_EQ(relativeDiff(5.0, 5.0), 0.0);
}

TEST(RelativeDiff, ZeroDenominatorUsesEps)
{
    // Does not divide by zero; huge but finite.
    const double d = relativeDiff(1.0, 0.0);
    EXPECT_GT(d, 1e9);
    EXPECT_TRUE(std::isfinite(d));
}

// The paper's Algorithm 1 uses a 1% relative threshold; make sure the
// helper expresses that cleanly.
TEST(RelativeDiff, OnePercentThresholdSemantics)
{
    EXPECT_LT(relativeDiff(100.4, 100.0), 0.01);
    EXPECT_GT(relativeDiff(101.5, 100.0), 0.01);
}

} // namespace
} // namespace gevo
