#include "support/strings.h"

#include <gtest/gtest.h>

namespace gevo {
namespace {

TEST(Split, Basic)
{
    const auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(Split, KeepsEmptyFields)
{
    const auto parts = split("a,,c,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[3], "");
}

TEST(Split, NoSeparator)
{
    const auto parts = split("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(Trim, Whitespace)
{
    EXPECT_EQ(trim("  hello \t\r\n"), "hello");
    EXPECT_EQ(trim("hello"), "hello");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
}

TEST(StartsWith, Basic)
{
    EXPECT_TRUE(startsWith("kernel @foo", "kernel "));
    EXPECT_FALSE(startsWith("kern", "kernel"));
    EXPECT_TRUE(startsWith("x", ""));
}

TEST(Strformat, FormatsLikePrintf)
{
    EXPECT_EQ(strformat("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(strformat("%.2f", 1.235), "1.24");
    EXPECT_EQ(strformat("empty"), "empty");
}

TEST(Strformat, LongStrings)
{
    const std::string big(500, 'a');
    EXPECT_EQ(strformat("%s", big.c_str()).size(), 500u);
}

} // namespace
} // namespace gevo
