#include "support/table.h"

#include <gtest/gtest.h>

namespace gevo {
namespace {

TEST(Table, CellAccess)
{
    Table t({"name", "value"});
    t.row().cell("alpha").cell(1.5, 1);
    t.row().cell("beta").cell(static_cast<long long>(7));
    ASSERT_EQ(t.rowCount(), 2u);
    EXPECT_EQ(t.at(0, 0), "alpha");
    EXPECT_EQ(t.at(0, 1), "1.5");
    EXPECT_EQ(t.at(1, 1), "7");
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.row().cell("x").cell("y");
    EXPECT_EQ(t.toCsv(), "a,b\nx,y\n");
}

TEST(Table, CsvEscaping)
{
    Table t({"a"});
    t.row().cell("has,comma");
    t.row().cell("has\"quote");
    const auto csv = t.toCsv();
    EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, DoubleFormatting)
{
    Table t({"v"});
    t.row().cell(3.14159, 3);
    EXPECT_EQ(t.at(0, 0), "3.142");
}

} // namespace
} // namespace gevo
