#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace gevo {
namespace {

TEST(ThreadPool, RunsAllTasks)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.drain();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, DrainIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.drain();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&count] { ++count; });
    pool.submit([&count] { ++count; });
    pool.drain();
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, ParallelForCoversRange)
{
    ThreadPool pool(3);
    std::vector<int> hits(257, 0);
    pool.parallelFor(hits.size(),
                     [&hits](std::size_t i) { hits[i] = 1; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 257);
}

TEST(ThreadPool, WorkerCountDefaultsPositive)
{
    ThreadPool pool;
    EXPECT_GE(pool.workerCount(), 1u);
}

TEST(ThreadPool, DrainOnEmptyPoolReturns)
{
    ThreadPool pool(1);
    pool.drain(); // must not hang
    SUCCEED();
}

} // namespace
} // namespace gevo
